package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// DeltaRecord is the journaled form of one applied delta: exactly what a
// recovery needs to re-apply it deterministically. Add records carry the ID
// the session assigned so replay can verify it re-derives the same one.
type DeltaRecord struct {
	// Op is "add", "remove", or "resize".
	Op string `json:"op"`
	// ID is the input the delta addressed (for "add": the assigned ID).
	ID InputID `json:"id"`
	// Size is the input size for "add" and the new size for "resize"; zero
	// (and omitted) for "remove".
	Size core.Size `json:"size,omitempty"`
}

// Journal receives the session's durability stream: one Delta per applied
// delta and one Snapshot per full-state capture (session creation, rebuild
// swaps — whose portfolio outcome is not replay-deterministic — and every
// Config.SnapshotEvery deltas). Both are called with the session lock held,
// so implementations must be fast, must not block on the session, and must
// not call back into it.
type Journal interface {
	Delta(rec DeltaRecord)
	Snapshot(st *State)
}

// StateReducer is one reducer slot of a serialized session state.
type StateReducer struct {
	// Members are the slot's input IDs, ascending. An empty member list marks
	// a free (nil) slot; free-slot order lives in State.Free.
	Members []InputID `json:"members,omitempty"`
}

// StateCounters mirrors the session's cumulative statistics. Counters are
// excluded from the fingerprint: a no-op resize bumps Resizes without being
// journaled, so they are best-effort across recovery, not replay-exact.
type StateCounters struct {
	Adds            uint64    `json:"adds,omitempty"`
	Removes         uint64    `json:"removes,omitempty"`
	Resizes         uint64    `json:"resizes,omitempty"`
	Rebuilds        uint64    `json:"rebuilds,omitempty"`
	RebuildFailures uint64    `json:"rebuild_failures,omitempty"`
	MovedBytes      core.Size `json:"moved_bytes,omitempty"`
	LastMigration   core.Size `json:"last_migration,omitempty"`
}

// State is the full serializable state of a session: everything delta replay
// depends on, including the parts invisible in a Snapshot — the ID cursor,
// the free-slot stack order, and the maintenance tuning. Applying the same
// DeltaRecords to the same State always reproduces the same structure, which
// is the property the WAL's snapshot-plus-replay recovery rests on.
type State struct {
	// Capacity, MigrationBudget, Headroom, and RebuildThreshold are the
	// session's Config values (raw, zero-means-default); replay with
	// different tuning would diverge, so they travel with the state.
	Capacity         core.Size `json:"capacity"`
	MigrationBudget  core.Size `json:"migration_budget,omitempty"`
	Headroom         core.Size `json:"headroom,omitempty"`
	RebuildThreshold float64   `json:"rebuild_threshold,omitempty"`
	// Next is the next ID Add will hand out; Cursor rotates cover templates.
	Next   InputID `json:"next"`
	Cursor InputID `json:"cursor"`
	// Drift and Version are the divergence meter and the change counter.
	Drift   core.Size `json:"drift"`
	Version uint64    `json:"version"`
	// IDs are the live input IDs ascending; Sizes aligns with IDs.
	IDs   []InputID   `json:"ids"`
	Sizes []core.Size `json:"sizes"`
	// Reducers are the slots in index order, including free ones; Free is
	// the free-slot stack, bottom first, so slot recycling replays in the
	// same LIFO order.
	Reducers []StateReducer `json:"reducers"`
	Free     []int          `json:"free,omitempty"`
	Counters StateCounters  `json:"counters"`
}

// Fingerprint hashes everything replay-deterministic about the state:
// capacity and tuning, cursorry bookkeeping, live IDs and sizes, the exact
// slot structure, and the free stack. Counters are excluded (see
// StateCounters). Two sessions with equal fingerprints apply future deltas
// identically.
func (st *State) Fingerprint() uint64 {
	h := core.FingerprintSizes(st.Sizes)
	h = core.MixFingerprint(h,
		uint64(st.Capacity), uint64(st.MigrationBudget), uint64(st.Headroom),
		uint64(int64(st.RebuildThreshold*1e9)),
		uint64(st.Next), uint64(st.Cursor), uint64(st.Drift), st.Version,
		uint64(len(st.IDs)))
	for _, id := range st.IDs {
		h = core.MixFingerprint(h, uint64(id))
	}
	h = core.MixFingerprint(h, uint64(len(st.Reducers)))
	for _, r := range st.Reducers {
		h = core.MixFingerprint(h, uint64(len(r.Members)))
		for _, m := range r.Members {
			h = core.MixFingerprint(h, uint64(m))
		}
	}
	h = core.MixFingerprint(h, uint64(len(st.Free)))
	for _, slot := range st.Free {
		h = core.MixFingerprint(h, uint64(slot))
	}
	return h
}

// State captures the full serializable session state.
func (s *Session) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateLocked()
}

func (s *Session) stateLocked() *State {
	st := &State{
		Capacity:         s.cfg.Capacity,
		MigrationBudget:  s.cfg.MigrationBudget,
		Headroom:         s.cfg.Headroom,
		RebuildThreshold: s.cfg.RebuildThreshold,
		Next:             s.next,
		Cursor:           s.cursor,
		Drift:            s.drift,
		Version:          s.version,
		IDs:              append([]InputID(nil), s.ids...),
		Sizes:            make([]core.Size, len(s.ids)),
		Reducers:         make([]StateReducer, len(s.reds)),
		Free:             append([]int(nil), s.free...),
		Counters: StateCounters{
			Adds:            s.st.adds,
			Removes:         s.st.removes,
			Resizes:         s.st.resizes,
			Rebuilds:        s.st.rebuilds,
			RebuildFailures: s.st.rebuildFailures,
			MovedBytes:      s.st.movedBytes,
			LastMigration:   s.st.lastMigration,
		},
	}
	for i, id := range st.IDs {
		st.Sizes[i] = s.sizes[id]
	}
	for slot, r := range s.reds {
		if r == nil {
			continue
		}
		st.Reducers[slot].Members = append([]InputID(nil), r.members...)
	}
	return st
}

// WriteSnapshot journals a full-state snapshot immediately (used by WAL
// checkpoints). It is a no-op without a configured journal.
func (s *Session) WriteSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.cfg.Journal != nil {
		s.cfg.Journal.Snapshot(s.stateLocked())
		s.sinceSnap = 0
	}
	return nil
}

// snapshotEvery resolves the periodic-snapshot cadence.
func (s *Session) snapshotEvery() int {
	switch {
	case s.cfg.SnapshotEvery > 0:
		return s.cfg.SnapshotEvery
	case s.cfg.SnapshotEvery < 0:
		return 0 // disabled
	default:
		return DefaultSnapshotEvery
	}
}

// journalDeltaLocked streams one applied delta to the journal and rolls a
// fresh snapshot once enough deltas accumulated since the last one, so
// recovery replay stays bounded.
func (s *Session) journalDeltaLocked(rep *DeltaReport) {
	if s.cfg.Journal == nil {
		return
	}
	rec := DeltaRecord{Op: rep.Op, ID: rep.ID}
	if rep.Op == "add" || rep.Op == "resize" {
		rec.Size = s.sizes[rep.ID]
	}
	s.cfg.Journal.Delta(rec)
	s.sinceSnap++
	if every := s.snapshotEvery(); every > 0 && s.sinceSnap >= every {
		s.cfg.Journal.Snapshot(s.stateLocked())
		s.sinceSnap = 0
	}
}

// validateState rejects states that cannot have come from a session dump.
func validateState(st *State) error {
	if st == nil {
		return errors.New("stream: nil state")
	}
	if st.Capacity <= 0 {
		return fmt.Errorf("stream: state capacity must be positive, got %d", st.Capacity)
	}
	if len(st.IDs) != len(st.Sizes) {
		return fmt.Errorf("stream: state has %d ids but %d sizes", len(st.IDs), len(st.Sizes))
	}
	for i, id := range st.IDs {
		if i > 0 && id <= st.IDs[i-1] {
			return fmt.Errorf("stream: state ids not strictly ascending at index %d", i)
		}
		if id >= st.Next {
			return fmt.Errorf("stream: state id %d not below next id %d", id, st.Next)
		}
		if st.Sizes[i] <= 0 {
			return fmt.Errorf("stream: state id %d: %w (size %d)", id, core.ErrNonPositiveSize, st.Sizes[i])
		}
	}
	free := make(map[int]struct{}, len(st.Free))
	for _, slot := range st.Free {
		if slot < 0 || slot >= len(st.Reducers) {
			return fmt.Errorf("stream: free slot %d out of range", slot)
		}
		if _, dup := free[slot]; dup {
			return fmt.Errorf("stream: free slot %d listed twice", slot)
		}
		free[slot] = struct{}{}
	}
	live := make(map[InputID]struct{}, len(st.IDs))
	for _, id := range st.IDs {
		live[id] = struct{}{}
	}
	for slot, r := range st.Reducers {
		_, isFree := free[slot]
		if (len(r.Members) == 0) != isFree {
			return fmt.Errorf("stream: slot %d: empty-membership and free-list disagree", slot)
		}
		for i, m := range r.Members {
			if i > 0 && m <= r.Members[i-1] {
				return fmt.Errorf("stream: slot %d members not strictly ascending", slot)
			}
			if _, ok := live[m]; !ok {
				return fmt.Errorf("stream: slot %d member %d is not a live input", slot, m)
			}
		}
	}
	return nil
}

// RestoreSession rebuilds a session from a serialized State and replays the
// deltas journaled after it, in order. The state carries its own capacity and
// tuning; cfg contributes the behavioral wiring — Replan (required),
// AutoRebuild, Journal, and SnapshotEvery — which is attached only after
// replay so recovery itself is never re-journaled. Replay re-derives each
// add's ID and fails on divergence, so a corrupt or misordered log surfaces
// as an error instead of a silently different schema.
func RestoreSession(cfg Config, st *State, deltas []DeltaRecord) (*Session, error) {
	if cfg.Replan == nil {
		return nil, errors.New("stream: Config.Replan is required")
	}
	if err := validateState(st); err != nil {
		return nil, err
	}
	s := &Session{
		cfg: Config{
			Capacity:         st.Capacity,
			MigrationBudget:  st.MigrationBudget,
			Headroom:         st.Headroom,
			RebuildThreshold: st.RebuildThreshold,
			Replan:           cfg.Replan,
			SnapshotEvery:    cfg.SnapshotEvery,
			// AutoRebuild and Journal attach after replay.
		},
		sizes:      make(map[InputID]core.Size, len(st.IDs)),
		assign:     make(map[InputID][]int, len(st.IDs)),
		assignBits: make(map[InputID]*core.CoverSet, len(st.IDs)),
		next:       st.Next,
		cursor:     st.Cursor,
		drift:      st.Drift,
		version:    st.Version,
		maxDirty:   true,
		st: counters{
			adds:            st.Counters.Adds,
			removes:         st.Counters.Removes,
			resizes:         st.Counters.Resizes,
			rebuilds:        st.Counters.Rebuilds,
			rebuildFailures: st.Counters.RebuildFailures,
			movedBytes:      st.Counters.MovedBytes,
			lastMigration:   st.Counters.LastMigration,
		},
	}
	s.baseCtx, s.cancel = context.WithCancelCause(context.Background())
	s.ids = append([]InputID(nil), st.IDs...)
	for i, id := range st.IDs {
		s.sizes[id] = st.Sizes[i]
		s.total += st.Sizes[i]
		s.assign[id] = nil
		s.assignBits[id] = core.NewCoverSet(len(st.Reducers))
	}
	s.reds = make([]*red, len(st.Reducers))
	for slot, sr := range st.Reducers {
		if len(sr.Members) == 0 {
			continue
		}
		r := &red{members: append([]InputID(nil), sr.Members...)}
		for _, m := range sr.Members {
			r.load += s.sizes[m]
			s.assign[m] = append(s.assign[m], slot)
			s.assignBits[m].Grow(slot + 1)
			s.assignBits[m].Add(slot)
		}
		s.reds[slot] = r
	}
	for _, slots := range s.assign {
		sort.Ints(slots)
	}
	s.free = append([]int(nil), st.Free...)

	// Paranoia: the rebuilt structure must fingerprint identically to the
	// state it came from, or replay below would diverge from the original.
	if got := s.stateLocked().Fingerprint(); got != st.Fingerprint() {
		s.cancel(errSessionAborted)
		return nil, fmt.Errorf("stream: restored state fingerprint %#x != source %#x", got, st.Fingerprint())
	}
	// The session is structurally live from here: a replay failure exits
	// through Close, which balances this gauge.
	obsSessions.Inc()

	for i, d := range deltas {
		var err error
		switch d.Op {
		case "add":
			var id InputID
			id, _, err = s.Add(d.Size)
			if err == nil && id != d.ID {
				err = fmt.Errorf("replayed add produced id %d, journal says %d", id, d.ID)
			}
		case "remove":
			_, err = s.Remove(d.ID)
		case "resize":
			_, err = s.Resize(d.ID, d.Size)
		default:
			err = fmt.Errorf("unknown op %q", d.Op)
		}
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("stream: replaying delta %d/%d (%s %d): %w", i+1, len(deltas), d.Op, d.ID, err)
		}
	}

	s.mu.Lock()
	s.cfg.AutoRebuild = cfg.AutoRebuild
	s.cfg.Journal = cfg.Journal
	s.mu.Unlock()
	return s, nil
}
