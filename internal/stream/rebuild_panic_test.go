package stream_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestRebuildPanicDoesNotLatch is the regression test for the latched
// rebuild flag: a ReplanFunc that panics used to leave the session's
// rebuilding flag set forever, so every later Rebuild returned
// ErrRebuildInFlight. The panic must surface as an ordinary rebuild error,
// count as a rebuild failure, and leave the session able to rebuild again.
func TestRebuildPanicDoesNotLatch(t *testing.T) {
	var panicNext atomic.Bool
	replan := func(ctx context.Context, sizes []core.Size, q core.Size) (*core.MappingSchema, error) {
		if panicNext.Load() {
			panic("solver exploded")
		}
		return solveReplan(ctx, sizes, q)
	}
	s, err := stream.NewSession(context.Background(), stream.Config{
		Capacity: 64,
		Initial:  []core.Size{8, 8, 8, 8},
		Replan:   replan,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	panicNext.Store(true)
	if _, err := s.Rebuild(context.Background()); err == nil {
		t.Fatal("Rebuild with panicking replan succeeded, want error")
	} else if errors.Is(err, stream.ErrRebuildInFlight) {
		t.Fatalf("Rebuild returned ErrRebuildInFlight, want the recovered panic: %v", err)
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Rebuild error = %v, want the recovered panic", err)
	}
	if got := s.Stats().RebuildFailures; got != 1 {
		t.Fatalf("RebuildFailures after panic = %d, want 1", got)
	}

	// The flag must not be latched: a healthy replan rebuilds fine.
	panicNext.Store(false)
	if _, err := s.Rebuild(context.Background()); err != nil {
		t.Fatalf("Rebuild after recovered panic: %v (rebuilding flag latched?)", err)
	}
	if got := s.Stats().Rebuilds; got != 1 {
		t.Fatalf("Rebuilds after recovery = %d, want 1", got)
	}
	audit(t, s)
}
