package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// InputID identifies one live input of a session. IDs are handed out by Add
// (and by NewSession for the initial inputs, as 0..m-1) and stay stable
// across repairs and rebuilds; they are never reused after Remove.
type InputID = int

// ReplanFunc solves the offline problem for a full snapshot of the live
// sizes: the i-th size is the input with dense ID i, and the returned schema
// must be a valid A2A mapping schema for those sizes under capacity q. The
// session calls it outside its lock, so it may be arbitrarily slow.
type ReplanFunc func(ctx context.Context, sizes []core.Size, q core.Size) (*core.MappingSchema, error)

// Defaults for Config.
const (
	// DefaultRebuildThreshold is the drift ratio (drift bytes over live
	// bytes) past which a rebuild is requested.
	DefaultRebuildThreshold = 1.0
	// DefaultSnapshotEvery is how many journaled deltas may accumulate
	// before the session writes a fresh full-state snapshot to its journal,
	// bounding how much recovery ever has to replay.
	DefaultSnapshotEvery = 1024
)

// Config configures NewSession.
type Config struct {
	// Capacity is the reducer capacity q. Required.
	Capacity core.Size
	// MigrationBudget caps the opportunistic movement (reducer-merge
	// compaction) of one delta, in bytes. 0 means 2*Capacity; negative
	// disables compaction. Mandatory repair ignores the budget and flags
	// OverBudget instead (see the package comment).
	MigrationBudget core.Size
	// Headroom is the slack reserved in every reducer the session itself
	// builds or replans: plans are solved at Capacity-Headroom so arrivals
	// up to this size can join existing reducers instead of cascading into
	// fresh ones. Correctness is always enforced at the full Capacity.
	// 0 means Capacity/8; negative reserves nothing.
	Headroom core.Size
	// RebuildThreshold is the drift ratio past which NeedsRebuild reports
	// true. 0 means DefaultRebuildThreshold; negative disables rebuild
	// requests entirely.
	RebuildThreshold float64
	// AutoRebuild makes the session trigger background rebuilds itself when
	// drift passes the threshold. When false, callers poll NeedsRebuild and
	// run Rebuild on their own pool (cmd/pland runs it on its job queue).
	AutoRebuild bool
	// Replan solves a full snapshot during rebuilds. Required.
	Replan ReplanFunc
	// Initial seeds the session: NewSession plans these sizes through Replan
	// once and imports the result, so the session starts from a portfolio-
	// quality schema instead of m incremental repairs.
	Initial []core.Size
	// Journal, when non-nil, receives the session's durability stream: every
	// applied delta plus full-state snapshots at creation, after rebuild
	// swaps, and every SnapshotEvery deltas. Calls happen under the session
	// lock; see Journal's contract.
	Journal Journal
	// SnapshotEvery is the periodic-snapshot cadence in deltas. 0 means
	// DefaultSnapshotEvery; negative disables periodic snapshots (creation
	// and rebuild snapshots still happen).
	SnapshotEvery int
}

// Session errors.
var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("stream: session is closed")
	// ErrUnknownID is returned for deltas addressing an input that is not
	// live.
	ErrUnknownID = errors.New("stream: unknown input id")
	// ErrRebuildInFlight is returned by Rebuild while another rebuild (manual
	// or automatic) is still running.
	ErrRebuildInFlight = errors.New("stream: a rebuild is already in flight")
)

// red is one reducer of the live structure. Members are kept as a sorted
// slice: at the typical tens-of-members scale, binary search plus memmove
// beats hashing, and intersection becomes a cheap merge walk.
type red struct {
	members []InputID // ascending
	load    core.Size
}

// counters are the cumulative session statistics; Session.mu guards them.
type counters struct {
	adds, removes, resizes    uint64
	rebuilds, rebuildFailures uint64
	movedBytes                core.Size
	lastMigration             core.Size
}

// Session owns a live mapping schema and applies deltas to it. Create with
// NewSession; Sessions are safe for concurrent use.
type Session struct {
	cfg Config

	mu    sync.Mutex
	sizes map[InputID]core.Size
	ids   []InputID // live IDs, ascending
	total core.Size
	next  InputID
	// reds holds the reducers; nil entries are free slots recycled via free.
	reds []*red
	free []int
	// assign maps each live input to the sorted slots of the reducers
	// holding it; assignBits mirrors it as a bitset over slot indexes, so
	// membership ("is x already in this reducer?") and row-set coverage
	// ("do x and m share a reducer?") are O(1) and word-parallel instead of
	// sorted-slice searches and merge walks.
	assign     map[InputID][]int
	assignBits map[InputID]*core.CoverSet

	// cursor rotates cover templates across the live inputs so arrivals
	// spread over every reducer row instead of piling onto one.
	cursor InputID
	// maxLive caches the largest live size for O(1) pair-feasibility
	// checks; maxDirty forces a rescan after the max may have shrunk.
	maxLive  core.Size
	maxDirty bool

	drift      core.Size
	version    uint64
	rebuilding bool
	closed     bool
	st         counters
	// sinceSnap counts journaled deltas since the last journal snapshot.
	sinceSnap int

	baseCtx context.Context
	cancel  context.CancelCauseFunc
	wg      sync.WaitGroup
}

// errSessionAborted is the cancellation cause of a base context whose
// session never went live (construction or restore failed).
var errSessionAborted = errors.New("stream: session construction failed")

// testHookSessionAbort, when non-nil, observes sessions whose construction
// failed after the base context existed; the leak regression test asserts
// the context was canceled rather than leaked.
var testHookSessionAbort func(*Session)

// NewSession builds a session for capacity cfg.Capacity. When cfg.Initial is
// non-empty the initial instance is planned through cfg.Replan under ctx and
// imported, so an infeasible or failing initial plan surfaces here.
func NewSession(ctx context.Context, cfg Config) (*Session, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("stream: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.Replan == nil {
		return nil, errors.New("stream: Config.Replan is required")
	}
	s := &Session{
		cfg:        cfg,
		sizes:      make(map[InputID]core.Size),
		assign:     make(map[InputID][]int),
		assignBits: make(map[InputID]*core.CoverSet),
	}
	s.baseCtx, s.cancel = context.WithCancelCause(context.Background())
	// Every error return below must release the base context's resources, or
	// each rejected session request leaks a cancelable context.
	live := false
	defer func() {
		if !live {
			s.cancel(errSessionAborted)
			if testHookSessionAbort != nil {
				testHookSessionAbort(s)
			}
		}
	}()
	if len(cfg.Initial) == 0 {
		s.journalInitialSnapshot()
		obsSessions.Inc()
		live = true
		return s, nil
	}
	var top1, top2 core.Size
	for i, w := range cfg.Initial {
		if w <= 0 {
			return nil, fmt.Errorf("stream: initial input %d: %w (size %d)", i, core.ErrNonPositiveSize, w)
		}
		if w > top1 {
			top1, top2 = w, top1
		} else if w > top2 {
			top2 = w
		}
	}
	if top1 > cfg.Capacity || (len(cfg.Initial) > 1 && top1+top2 > cfg.Capacity) {
		return nil, fmt.Errorf("%w: initial sizes do not fit capacity %d pairwise", core.ErrInfeasible, cfg.Capacity)
	}
	planned, err := s.replan(ctx, cfg.Initial)
	if err != nil {
		return nil, fmt.Errorf("stream: planning initial instance: %w", err)
	}
	snapIDs := make([]InputID, len(cfg.Initial))
	for i, w := range cfg.Initial {
		snapIDs[i] = i
		s.sizes[i] = w
		s.assign[i] = nil
		s.assignBits[i] = core.NewCoverSet(0)
		s.ids = append(s.ids, i)
		s.total += w
	}
	s.next = len(cfg.Initial)
	s.maxLive = top1
	s.swapLocked(planned, snapIDs) // no concurrency yet, lock not needed
	s.journalInitialSnapshot()
	obsSessions.Inc()
	live = true
	return s, nil
}

// journalInitialSnapshot records the session's birth state so recovery has a
// base to replay onto. NewSession has no concurrency yet, so no lock.
func (s *Session) journalInitialSnapshot() {
	if s.cfg.Journal != nil {
		s.cfg.Journal.Snapshot(s.stateLocked())
	}
}

// Close stops the session: the in-flight background rebuild (if any) is
// canceled and awaited, and every later method returns ErrClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	obsSessions.Dec()
	s.cancel(ErrClosed)
	s.wg.Wait()
	return nil
}

// Len returns the number of live inputs.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// Stats is a point-in-time census of a session.
type Stats struct {
	// Inputs and LiveBytes describe the live instance.
	Inputs    int       `json:"inputs"`
	LiveBytes core.Size `json:"live_bytes"`
	// Reducers, MaxLoad, Communication, and ReplicationRate price the
	// current schema exactly as core.Cost does.
	Reducers        int       `json:"reducers"`
	MaxLoad         core.Size `json:"max_load"`
	Communication   core.Size `json:"communication"`
	ReplicationRate float64   `json:"replication_rate"`
	// Adds, Removes, and Resizes count applied deltas; Rebuilds and
	// RebuildFailures count full replans.
	Adds            uint64 `json:"adds"`
	Removes         uint64 `json:"removes"`
	Resizes         uint64 `json:"resizes"`
	Rebuilds        uint64 `json:"rebuilds"`
	RebuildFailures uint64 `json:"rebuild_failures"`
	// MovedBytes is the cumulative bytes shipped by repairs, compaction, and
	// rebuild swaps.
	MovedBytes core.Size `json:"moved_bytes"`
	// DriftBytes and DriftRatio measure divergence from a fresh plan since
	// the last rebuild; NeedsRebuild is DriftRatio against the threshold.
	DriftBytes   core.Size `json:"drift_bytes"`
	DriftRatio   float64   `json:"drift_ratio"`
	NeedsRebuild bool      `json:"needs_rebuild"`
	// LastRebuildMigration is the migration cost of the most recent swap.
	LastRebuildMigration core.Size `json:"last_rebuild_migration"`
	// RebuildInFlight reports whether a rebuild is currently running.
	RebuildInFlight bool `json:"rebuild_in_flight"`
	// Version increments on every delta and every swap.
	Version uint64 `json:"version"`
}

// Stats snapshots the session's counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Session) statsLocked() Stats {
	st := Stats{
		Inputs:               len(s.ids),
		LiveBytes:            s.total,
		Adds:                 s.st.adds,
		Removes:              s.st.removes,
		Resizes:              s.st.resizes,
		Rebuilds:             s.st.rebuilds,
		RebuildFailures:      s.st.rebuildFailures,
		MovedBytes:           s.st.movedBytes,
		DriftBytes:           s.drift,
		DriftRatio:           s.driftRatioLocked(),
		NeedsRebuild:         s.needsRebuildLocked(),
		LastRebuildMigration: s.st.lastMigration,
		RebuildInFlight:      s.rebuilding,
		Version:              s.version,
	}
	for _, r := range s.reds {
		if r == nil {
			continue
		}
		st.Reducers++
		st.Communication += r.load
		if r.load > st.MaxLoad {
			st.MaxLoad = r.load
		}
	}
	if s.total > 0 {
		st.ReplicationRate = float64(st.Communication) / float64(s.total)
	}
	return st
}

// Snapshot is a consistent view of the session: the schema over dense input
// IDs plus the mapping back to the session's stable external IDs.
type Snapshot struct {
	// Schema is the current mapping schema. Input IDs are dense 0..m-1 in
	// ascending external-ID order, so exec.NewAuditor and core.ValidateA2A
	// apply directly. The schema is owned by the caller.
	Schema *core.MappingSchema
	// IDs maps dense IDs to external ones: IDs[dense] is the external ID.
	IDs []InputID
	// Sizes are the live sizes, aligned with IDs.
	Sizes []core.Size
	// Stats is the census at snapshot time.
	Stats Stats
}

// Snapshot materializes the current schema and census atomically.
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Snapshot{
		Schema: &core.MappingSchema{Problem: core.ProblemA2A, Capacity: s.cfg.Capacity, Algorithm: "stream/incremental"},
		IDs:    append([]InputID(nil), s.ids...),
		Sizes:  make([]core.Size, len(s.ids)),
		Stats:  s.statsLocked(),
	}
	dense := make(map[InputID]int, len(s.ids))
	for i, id := range snap.IDs {
		dense[id] = i
		snap.Sizes[i] = s.sizes[id]
	}
	for _, r := range s.reds {
		if r == nil {
			continue
		}
		// Members are sorted by external ID and the dense mapping preserves
		// order, so the dense inputs come out ascending.
		inputs := make([]int, len(r.members))
		for i, m := range r.members {
			inputs[i] = dense[m]
		}
		snap.Schema.Reducers = append(snap.Schema.Reducers, core.Reducer{Inputs: inputs, Load: r.load})
	}
	return snap
}

// liveMaxLocked returns the largest live input size, rescanning only after
// a removal or shrink may have lowered it.
func (s *Session) liveMaxLocked() core.Size {
	if s.maxDirty {
		s.maxLive = 0
		for _, id := range s.ids {
			if w := s.sizes[id]; w > s.maxLive {
				s.maxLive = w
			}
		}
		s.maxDirty = false
	}
	return s.maxLive
}

// liveMaxExcludingLocked returns the largest live size among inputs other
// than x.
func (s *Session) liveMaxExcludingLocked(x InputID) core.Size {
	if !s.maxDirty && s.sizes[x] < s.maxLive {
		return s.maxLive
	}
	var max core.Size
	for _, id := range s.ids {
		if id != x && s.sizes[id] > max {
			max = s.sizes[id]
		}
	}
	return max
}

// noteSizeLocked folds a new or grown size into the cached maximum.
func (s *Session) noteSizeLocked(w core.Size) {
	if !s.maxDirty && w > s.maxLive {
		s.maxLive = w
	}
}

// noteShrinkLocked marks the cache dirty when a size at the maximum left.
func (s *Session) noteShrinkLocked(w core.Size) {
	if w >= s.maxLive {
		s.maxDirty = true
	}
}

// planCapacity is the capacity handed to ReplanFunc and used when packing
// fresh reducers: the real capacity minus the reserved headroom. Pairs that
// only fit the full capacity still get it (correctness beats headroom).
func (s *Session) planCapacity() core.Size {
	h := s.cfg.Headroom
	switch {
	case h < 0:
		h = 0
	case h == 0:
		h = s.cfg.Capacity / 8
	}
	if h >= s.cfg.Capacity {
		h = 0
	}
	return s.cfg.Capacity - h
}

// migrationBudget resolves the per-delta compaction budget.
func (s *Session) migrationBudget() core.Size {
	switch {
	case s.cfg.MigrationBudget > 0:
		return s.cfg.MigrationBudget
	case s.cfg.MigrationBudget < 0:
		return 0
	default:
		return 2 * s.cfg.Capacity
	}
}

func (s *Session) driftRatioLocked() float64 {
	if s.total <= 0 {
		return 0
	}
	return float64(s.drift) / float64(s.total)
}

// NeedsRebuild reports whether drift has passed the rebuild threshold. With
// AutoRebuild unset this is the caller's cue to schedule Rebuild.
func (s *Session) NeedsRebuild() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.needsRebuildLocked()
}

func (s *Session) needsRebuildLocked() bool {
	th := s.cfg.RebuildThreshold
	if th == 0 {
		th = DefaultRebuildThreshold
	}
	if th < 0 || len(s.ids) < 2 {
		return false
	}
	return s.driftRatioLocked() > th
}

// insertSorted inserts v into the ascending slice, which must not already
// contain it.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// deleteSorted removes v from the ascending slice if present.
func deleteSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

// sharesReducerLocked reports whether two live inputs share a reducer, as a
// word-parallel intersection of their assignment bitsets.
func (s *Session) sharesReducerLocked(a, b InputID) bool {
	return s.assignBits[a].Intersects(s.assignBits[b])
}

// inRedLocked reports whether input x is assigned to the reducer in slot.
func (s *Session) inRedLocked(x InputID, slot int) bool {
	return s.assignBits[x].Contains(slot)
}

// newRedLocked allocates a reducer slot.
func (s *Session) newRedLocked() int {
	r := &red{}
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		s.reds[slot] = r
		return slot
	}
	s.reds = append(s.reds, r)
	return len(s.reds) - 1
}

// addToRedLocked assigns input x to the reducer in slot.
func (s *Session) addToRedLocked(x InputID, slot int) {
	r := s.reds[slot]
	r.members = insertSorted(r.members, x)
	r.load += s.sizes[x]
	s.assign[x] = insertSorted(s.assign[x], slot)
	bits := s.assignBits[x]
	if bits == nil {
		bits = core.NewCoverSet(len(s.reds))
		s.assignBits[x] = bits
	}
	bits.Grow(slot + 1)
	bits.Add(slot)
}

// removeFromRedLocked drops input x from the reducer in slot, freeing the
// slot when it empties.
func (s *Session) removeFromRedLocked(x InputID, slot int) {
	r := s.reds[slot]
	r.members = deleteSorted(r.members, x)
	r.load -= s.sizes[x]
	s.assign[x] = deleteSorted(s.assign[x], slot)
	s.assignBits[x].Remove(slot)
	if len(r.members) == 0 {
		s.reds[slot] = nil
		s.free = append(s.free, slot)
	}
}
