package jobs

import "repro/internal/obs"

// Process-wide job-queue series on obs.Default. Gauges follow a strict
// inc/dec discipline — Submit raises queue depth, exactly one of worker
// dequeue / Cancel-of-queued / Shutdown-drain lowers it — so the values stay
// truthful across every Manager a process runs (cmd/pland runs one).
var (
	obsQueueDepth = obs.Default.Gauge("pland_jobs_queue_depth",
		"Jobs waiting for a worker.")
	obsInFlight = obs.Default.Gauge("pland_jobs_in_flight",
		"Jobs executing right now.")
	obsSubmitted = obs.Default.Counter("pland_jobs_submitted_total",
		"Jobs accepted by Submit.")
	obsRejected = obs.Default.Counter("pland_jobs_rejected_total",
		"Submits refused because the queue was full.")
	obsFinishedVec = obs.Default.CounterVec("pland_jobs_finished_total",
		"Jobs reaching a terminal state, by state (succeeded, failed, canceled).", "state")
	obsFinSucceeded = obsFinishedVec.With("succeeded")
	obsFinFailed    = obsFinishedVec.With("failed")
	obsFinCanceled  = obsFinishedVec.With("canceled")
	obsExpired      = obs.Default.Counter("pland_jobs_expired_total",
		"Finished jobs evicted after their result TTL.")

	obsWaitSeconds = obs.Default.Histogram("pland_jobs_wait_seconds",
		"Queue wait from Submit to a worker starting the job.", obs.LatencyBuckets)
	obsRunSeconds = obs.Default.Histogram("pland_jobs_run_seconds",
		"Job execution time, start to finish.", obs.LatencyBuckets)
)
