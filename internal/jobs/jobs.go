// Package jobs runs expensive work asynchronously behind a bounded queue: a
// fixed worker pool drains submitted jobs, results are retained for a TTL so
// clients can poll for them, cancellation propagates through each job's
// context, and a full queue pushes back instead of buffering without bound.
// cmd/pland's v2 API is built on it — combinatorial solves (large n, tight
// q, exact search) belong behind an asynchronous, budget-aware interface,
// not a blocking request/response call.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → {succeeded, failed, canceled}, except that a queued job
// may move straight to canceled (client cancel) or failed (shutdown).
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Func is the work of one job. It must honor ctx: cancellation (client
// DELETE or manager shutdown) arrives as ctx.Done().
type Func func(ctx context.Context) (any, error)

// Manager errors.
var (
	// ErrQueueFull is returned by Submit when the queue is at capacity; HTTP
	// front ends map it to 429.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrShutdown is returned by Submit after Shutdown began, and is the
	// failure reason of jobs the shutdown drained.
	ErrShutdown = errors.New("jobs: manager is shutting down")
	// ErrNotFound is returned for unknown (or already-expired) job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel on a job that already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// Config configures New. The zero value uses the defaults.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many submitted jobs may wait for a worker;
	// 0 means 256. Submit returns ErrQueueFull beyond it.
	QueueDepth int
	// ResultTTL is how long a finished job (and its result) is retained for
	// polling; 0 means 15 minutes.
	ResultTTL time.Duration
	// OnFinish, when non-nil, observes every terminal transition with the
	// job's final snapshot. It runs under the manager lock — implementations
	// must be fast and must not call back into the Manager. cmd/pland uses
	// it to mark journaled jobs done in the WAL.
	OnFinish func(Snapshot)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	return c
}

// Snapshot is an immutable view of one job, safe to hold across the job's
// further transitions.
type Snapshot struct {
	// ID addresses the job in Get and Cancel.
	ID string
	// Kind is the caller-supplied job type label.
	Kind string
	// State is the lifecycle position at snapshot time.
	State State
	// Result is the Func's return value once State is StateSucceeded.
	Result any
	// Err is the failure or cancellation reason once State is StateFailed
	// or StateCanceled.
	Err error
	// Created, Started, and Finished stamp the transitions (zero until
	// reached).
	Created, Started, Finished time.Time
	// ExpiresAt is when a finished job is evicted; zero while unfinished.
	ExpiresAt time.Time
}

// job is the mutable record behind a Snapshot; mu of the owning Manager
// guards every field below fn.
type job struct {
	id   string
	kind string
	fn   Func

	state           State
	result          any
	err             error
	created         time.Time
	started         time.Time
	finished        time.Time
	expiresAt       time.Time
	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
}

func (j *job) snapshot() Snapshot {
	return Snapshot{
		ID:        j.id,
		Kind:      j.kind,
		State:     j.state,
		Result:    j.result,
		Err:       j.err,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
		ExpiresAt: j.expiresAt,
	}
}

// Manager owns the queue, the worker pool, and the retained results. Create
// with New; a Manager is safe for concurrent use.
type Manager struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond // signals workers that pending grew or closed flipped
	jobs map[string]*job
	// pending is the waiting line, oldest first. A canceled queued job is
	// removed immediately, so its slot frees for new submits right away.
	pending []*job
	closed  bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup
	janitor    sync.WaitGroup
	stopJanit  chan struct{}

	submitted, succeeded, failed, canceled int64
}

// New builds a Manager and starts its workers and TTL janitor.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		stopJanit: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	m.janitor.Add(1)
	go m.runJanitor()
	return m
}

// Submit enqueues fn as a new job and returns its queued snapshot. It never
// blocks: a full queue returns ErrQueueFull immediately.
func (m *Manager) Submit(kind string, fn Func) (Snapshot, error) {
	if fn == nil {
		return Snapshot{}, fmt.Errorf("jobs: nil Func")
	}
	j := &job{id: newID(), kind: kind, fn: fn, state: StateQueued, created: time.Now()}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrShutdown
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		obsRejected.Inc()
		return Snapshot{}, ErrQueueFull
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.submitted++
	obsSubmitted.Inc()
	obsQueueDepth.Inc()
	snap := j.snapshot()
	m.cond.Signal()
	m.mu.Unlock()
	return snap, nil
}

// Restore enqueues fn as a job under a caller-chosen ID — the recovery path
// for journaled submissions that never finished before a crash, which must
// come back under the IDs clients already hold. It behaves like Submit
// otherwise; an ID already present is rejected.
func (m *Manager) Restore(id, kind string, fn Func) (Snapshot, error) {
	if id == "" {
		return Snapshot{}, fmt.Errorf("jobs: empty job ID")
	}
	if fn == nil {
		return Snapshot{}, fmt.Errorf("jobs: nil Func")
	}
	j := &job{id: id, kind: kind, fn: fn, state: StateQueued, created: time.Now()}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrShutdown
	}
	if _, dup := m.jobs[id]; dup {
		m.mu.Unlock()
		return Snapshot{}, fmt.Errorf("jobs: job %s already exists", id)
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		obsRejected.Inc()
		return Snapshot{}, ErrQueueFull
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.submitted++
	obsSubmitted.Inc()
	obsQueueDepth.Inc()
	snap := j.snapshot()
	m.cond.Signal()
	m.mu.Unlock()
	return snap, nil
}

// Get returns the job's current snapshot. Expired jobs are evicted lazily,
// so a finished job older than the TTL reports ErrNotFound exactly as if
// the janitor had already swept it.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	if j.state.Terminal() && time.Now().After(j.expiresAt) {
		delete(m.jobs, id)
		obsExpired.Inc()
		return Snapshot{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Cancel requests cancellation. A queued job is canceled immediately; a
// running job has its context canceled and reports StateCanceled once its
// Func returns (poll Get to observe it). Canceling a finished job returns
// its snapshot with ErrFinished.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || (j.state.Terminal() && time.Now().After(j.expiresAt)) {
		if ok {
			obsExpired.Inc()
		}
		delete(m.jobs, id)
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		// Remove it from the waiting line so its queue slot frees
		// immediately instead of occupying capacity until a worker skips it.
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				obsQueueDepth.Dec()
				break
			}
		}
		j.cancelRequested = true
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
		return j.snapshot(), nil
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return j.snapshot(), nil
	default:
		return j.snapshot(), ErrFinished
	}
}

// Stats is a point-in-time census of the manager.
type Stats struct {
	// QueueDepth and QueueCapacity describe the waiting line.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Retained is how many jobs (any state) are currently addressable.
	Retained int `json:"retained"`
	// Running is how many jobs are executing right now.
	Running int `json:"running"`
	// Submitted, Succeeded, Failed, and Canceled are lifetime totals.
	Submitted int64 `json:"submitted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
}

// Stats snapshots the manager's counters. Expired finished jobs are swept
// here under the same lock, so Retained never counts entries Get would
// already report ErrNotFound for — the census and the API agree.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	st := Stats{
		QueueDepth:    len(m.pending),
		QueueCapacity: m.cfg.QueueDepth,
		Workers:       m.cfg.Workers,
		Submitted:     m.submitted,
		Succeeded:     m.succeeded,
		Failed:        m.failed,
		Canceled:      m.canceled,
	}
	for id, j := range m.jobs {
		if j.state.Terminal() && now.After(j.expiresAt) {
			delete(m.jobs, id)
			obsExpired.Inc()
			continue
		}
		if j.state == StateRunning {
			st.Running++
		}
	}
	st.Retained = len(m.jobs)
	return st
}

// Shutdown stops intake, cancels every running job's context, waits for the
// workers up to ctx's deadline, and marks every job that did not finish in
// time failed with ErrShutdown — jobs are never silently dropped. It returns
// ctx.Err() when the drain deadline cut the wait short.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.cond.Broadcast() // wake idle workers so they observe closed and exit
	m.mu.Unlock()

	close(m.stopJanit)
	m.baseCancel() // running jobs see ctx.Done()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		m.janitor.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}

	// Whatever is still queued or running at this point is failed with a
	// reason instead of being dropped.
	m.mu.Lock()
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			if j.state == StateQueued {
				obsQueueDepth.Dec() // never dequeued; keep the gauge truthful
			}
			m.finishLocked(j, StateFailed, nil, ErrShutdown)
		}
	}
	m.mu.Unlock()
	return drainErr
}

// worker drains the waiting line until shutdown.
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		obsQueueDepth.Dec()
		m.mu.Unlock()
		m.run(j)
	}
}

// run executes one dequeued job.
func (m *Manager) run(j *job) {
	m.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	fn := j.fn
	obsWaitSeconds.ObserveDuration(j.started.Sub(j.created))
	obsInFlight.Inc()
	m.mu.Unlock()
	defer cancel()

	result, err := fn(ctx)

	m.mu.Lock()
	defer m.mu.Unlock()
	obsInFlight.Dec()
	obsRunSeconds.ObserveSince(j.started)
	if j.state != StateRunning {
		return // shutdown already failed it
	}
	switch {
	case err == nil:
		m.finishLocked(j, StateSucceeded, result, nil)
	case j.cancelRequested && errors.Is(err, context.Canceled):
		m.finishLocked(j, StateCanceled, nil, err)
	case m.baseCtx.Err() != nil && errors.Is(err, context.Canceled):
		m.finishLocked(j, StateFailed, nil, fmt.Errorf("%w: %v", ErrShutdown, err))
	default:
		m.finishLocked(j, StateFailed, nil, err)
	}
}

// finishLocked moves a job to a terminal state. m.mu must be held.
func (m *Manager) finishLocked(j *job, s State, result any, err error) {
	j.state = s
	j.result = result
	j.err = err
	j.finished = time.Now()
	j.expiresAt = j.finished.Add(m.cfg.ResultTTL)
	j.fn = nil // release the closure and whatever it captured
	j.cancel = nil
	switch s {
	case StateSucceeded:
		m.succeeded++
		obsFinSucceeded.Inc()
	case StateFailed:
		m.failed++
		obsFinFailed.Inc()
	case StateCanceled:
		m.canceled++
		obsFinCanceled.Inc()
	}
	if m.cfg.OnFinish != nil {
		m.cfg.OnFinish(j.snapshot())
	}
}

// runJanitor periodically evicts expired finished jobs so retention is
// bounded even when nobody polls.
func (m *Manager) runJanitor() {
	defer m.janitor.Done()
	interval := m.cfg.ResultTTL / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopJanit:
			return
		case <-ticker.C:
			now := time.Now()
			m.mu.Lock()
			for id, j := range m.jobs {
				if j.state.Terminal() && now.After(j.expiresAt) {
					delete(m.jobs, id)
					obsExpired.Inc()
				}
			}
			m.mu.Unlock()
		}
	}
}

// newID returns a 16-byte random hex job ID.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random ID: %v", err))
	}
	return hex.EncodeToString(b[:])
}
