package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (last: %s)", id, want, snap.State)
	return Snapshot{}
}

func TestLifecycleSucceeds(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Shutdown(context.Background())
	snap, err := m.Submit("test", func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.ID == "" || snap.Created.IsZero() {
		t.Errorf("submit snapshot = %+v", snap)
	}
	final := waitState(t, m, snap.ID, StateSucceeded)
	if final.Result != 42 {
		t.Errorf("result = %v, want 42", final.Result)
	}
	if final.Err != nil || final.Started.IsZero() || final.Finished.IsZero() || final.ExpiresAt.IsZero() {
		t.Errorf("final snapshot = %+v", final)
	}
}

func TestLifecycleFails(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	boom := errors.New("boom")
	snap, err := m.Submit("test", func(ctx context.Context) (any, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, snap.ID, StateFailed)
	if !errors.Is(final.Err, boom) {
		t.Errorf("err = %v, want boom", final.Err)
	}
}

func TestCancelRunning(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	started := make(chan struct{})
	snap, err := m.Submit("slow", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitState(t, m, snap.ID, StateCanceled)
	if !errors.Is(final.Err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", final.Err)
	}
	// A second cancel of the now-terminal job reports ErrFinished.
	if _, err := m.Cancel(snap.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel err = %v, want ErrFinished", err)
	}
}

func TestCancelQueued(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit("blocker", func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit("victim", func(ctx context.Context) (any, error) { return "ran", nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Errorf("state after queued cancel = %s, want canceled immediately", got.State)
	}
	close(block)
	// The worker must skip the canceled job: its result stays nil.
	time.Sleep(20 * time.Millisecond)
	final, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled || final.Result != nil {
		t.Errorf("canceled job was still run: %+v", final)
	}
}

// TestCancelQueuedFreesQueueSlot: a canceled queued job must release its
// queue capacity immediately, not hold a 429 until a worker skips it.
func TestCancelQueuedFreesQueueSlot(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := m.Submit("blocker", func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	victim, err := m.Submit("victim", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("overflow", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-cancel overflow err = %v, want ErrQueueFull", err)
	}
	if _, err := m.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.QueueDepth != 0 {
		t.Errorf("queue depth after queued cancel = %d, want 0", st.QueueDepth)
	}
	replacement, err := m.Submit("replacement", func(ctx context.Context) (any, error) { return "ran", nil })
	if err != nil {
		t.Fatalf("submit after queued cancel err = %v, want slot freed", err)
	}
	close(release)
	if final := waitState(t, m, replacement.ID, StateSucceeded); final.Result != "ran" {
		t.Errorf("replacement result = %v", final.Result)
	}
}

func TestBackpressure(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := m.Submit("blocker", func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds the blocker; the queue itself is empty
	if _, err := m.Submit("fills-queue", func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("overflow", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit err = %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.QueueDepth != 1 || st.QueueCapacity != 1 || st.Running != 1 {
		t.Errorf("stats = %+v", st)
	}
	close(release)
}

func TestTTLEviction(t *testing.T) {
	m := New(Config{Workers: 1, ResultTTL: 40 * time.Millisecond})
	defer m.Shutdown(context.Background())
	snap, err := m.Submit("ephemeral", func(ctx context.Context) (any, error) { return "x", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateSucceeded)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m.Get(snap.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := m.Stats(); st.Retained != 0 {
		t.Errorf("retained = %d after expiry, want 0", st.Retained)
	}
}

func TestShutdownFailsInFlightWithReason(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{})
	// The running job ignores cancellation long enough to outlive the drain
	// deadline; the queued job never starts. Both must be failed with the
	// shutdown reason, not dropped.
	release := make(chan struct{})
	running, err := m.Submit("stubborn", func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return "late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit("never-starts", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown err = %v, want deadline exceeded (stubborn job outlives drain)", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s dropped by shutdown: %v", id, err)
		}
		if snap.State != StateFailed || !errors.Is(snap.Err, ErrShutdown) {
			t.Errorf("job %s after shutdown = %s (err %v), want failed with ErrShutdown", id, snap.State, snap.Err)
		}
	}
	if _, err := m.Submit("late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrShutdown) {
		t.Errorf("submit after shutdown err = %v, want ErrShutdown", err)
	}
	close(release)
}

// TestConcurrentHammer exercises submits, polls, and cancels from many
// goroutines at once; run with -race.
func TestConcurrentHammer(t *testing.T) {
	m := New(Config{Workers: 4, QueueDepth: 1024, ResultTTL: time.Minute})
	defer m.Shutdown(context.Background())
	const (
		submitters = 8
		perWorker  = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				kind := fmt.Sprintf("hammer-%d-%d", g, i)
				snap, err := m.Submit(kind, func(ctx context.Context) (any, error) {
					select {
					case <-time.After(time.Duration(i%3) * time.Millisecond):
						return kind, nil
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%4 == 0 {
					m.Cancel(snap.ID)
				}
				m.Get(snap.ID)
				m.Stats()
			}
		}(g)
	}
	wg.Wait()
	// Every submitted job must reach a terminal state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := m.Stats()
		if st.Succeeded+st.Failed+st.Canceled == st.Submitted {
			if st.Failed != 0 {
				t.Errorf("hammer produced %d failed jobs", st.Failed)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never drained: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
