package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitTerminal polls Get until the job reports a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", id, snap.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatsSweepsExpired is the regression test for the Stats/Get
// disagreement: Stats used to count expired-but-unswept finished jobs in
// Retained while Get already reported ErrNotFound for them. Stats must sweep
// under the same lock so the census and the API agree.
func TestStatsSweepsExpired(t *testing.T) {
	// A 1h TTL keeps the janitor (TTL/4, capped at 30s) out of the window;
	// the test forces expiry by hand so only Stats itself can sweep.
	m := New(Config{Workers: 1, QueueDepth: 4, ResultTTL: time.Hour})
	defer m.Shutdown(context.Background())

	snap, err := m.Submit("t", func(context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, m, snap.ID)

	m.mu.Lock()
	m.jobs[snap.ID].expiresAt = time.Now().Add(-time.Second)
	m.mu.Unlock()

	if st := m.Stats(); st.Retained != 0 {
		t.Fatalf("Stats().Retained = %d for an expired job Get would refuse, want 0", st.Retained)
	}
	if _, err := m.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after expiry = %v, want ErrNotFound", err)
	}
}

// TestOnFinishHook pins the OnFinish contract: it fires exactly once per
// finished job, with the terminal snapshot, including jobs the shutdown
// drain fails (those carry ErrShutdown so WAL owners can skip them).
func TestOnFinishHook(t *testing.T) {
	var mu sync.Mutex
	finished := make(map[string]Snapshot)
	m := New(Config{Workers: 1, QueueDepth: 4, ResultTTL: time.Hour,
		OnFinish: func(s Snapshot) {
			mu.Lock()
			finished[s.ID] = s
			mu.Unlock()
		}})

	snap, err := m.Submit("ok", func(context.Context) (any, error) { return "done", nil })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, m, snap.ID)
	mu.Lock()
	got, ok := finished[snap.ID]
	mu.Unlock()
	if !ok || got.State != StateSucceeded {
		t.Fatalf("OnFinish for succeeded job: got %+v, fired=%v", got, ok)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestRestore re-enqueues a job under a caller-chosen ID, as boot-time WAL
// recovery does, and refuses duplicates.
func TestRestore(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4, ResultTTL: time.Hour})
	defer m.Shutdown(context.Background())

	snap, err := m.Restore("job-recovered-1", "plan", func(context.Context) (any, error) { return 7, nil })
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if snap.ID != "job-recovered-1" || snap.Kind != "plan" {
		t.Fatalf("restored snapshot = %+v", snap)
	}
	fin := waitTerminal(t, m, "job-recovered-1")
	if fin.State != StateSucceeded || fin.Result != 7 {
		t.Fatalf("restored job finished as %+v", fin)
	}

	if _, err := m.Restore("job-recovered-1", "plan", func(context.Context) (any, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate Restore succeeded, want error")
	}
	if _, err := m.Restore("", "plan", func(context.Context) (any, error) { return nil, nil }); err == nil {
		t.Fatal("empty-ID Restore succeeded, want error")
	}
	if _, err := m.Restore("job-x", "plan", nil); err == nil {
		t.Fatal("nil-fn Restore succeeded, want error")
	}
}
