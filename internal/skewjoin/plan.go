// Package skewjoin implements the skew-join application of the paper's X2Y
// problem on top of the in-memory MapReduce engine: the join X(A,B) ⋈ Y(B,C)
// where some values of the joining attribute B are heavy hitters whose tuples
// do not fit into a single reducer.
//
// Light join keys are grouped into reducers by bin packing (one reducer per
// group, like an ordinary hash join with capacity-aware grouping). For every
// heavy hitter the tuples of each side are cut into blocks and the blocks are
// assigned to reducers with an X2Y mapping schema, so that every X block
// meets every Y block of that key while no reducer exceeds the capacity q.
package skewjoin

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/binpack"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/planner"
	"repro/internal/workload"
	"repro/internal/x2y"
)

// Config configures a skew-join run.
type Config struct {
	// Capacity is the reducer capacity q in bytes of tuple data.
	Capacity core.Size
	// BlockSize is the maximum number of bytes of one block of a heavy
	// hitter's tuples; 0 means Capacity/4. Blocks are the "inputs" of the
	// per-key X2Y instances.
	BlockSize core.Size
	// Policy selects the bin-packing heuristic; the zero value means
	// First-Fit-Decreasing unless PolicySet is true.
	Policy    binpack.Policy
	PolicySet bool
	// Workers bounds reduce-phase parallelism; 0 means one worker per
	// reducer.
	Workers int
	// CountOnly makes reducers emit per-key pair counts instead of the
	// joined tuples themselves; the joined tuples of a heavy hitter grow
	// quadratically, so benchmarks use CountOnly.
	CountOnly bool
	// MemoryBudget, when positive, bounds the in-memory shuffle bytes of
	// each underlying engine run (the light-key job and every heavy-key
	// job): over-budget partitions spill sorted run files and merge them
	// back at reduce time. Output is unchanged.
	MemoryBudget int64
	// SpillDir is where over-budget partitions spill; "" means the OS temp
	// dir.
	SpillDir string
}

// policy resolves the configured packing heuristic via binpack.ResolvePolicy.
func (c Config) policy() binpack.Policy {
	p, _ := binpack.ResolvePolicy(c.Policy, c.PolicySet)
	return p
}

func (c Config) blockSize() core.Size {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	b := c.Capacity / 4
	if b < 1 {
		b = 1
	}
	return b
}

// Plan is the reducer assignment computed before the MapReduce job runs.
type Plan struct {
	// NumReducers is the total number of reduce partitions.
	NumReducers int
	// LightReducers is how many of them serve bin-packed light keys.
	LightReducers int
	// HeavyReducers is how many serve heavy-hitter X2Y schemas.
	HeavyReducers int
	// HeavyKeys lists the detected heavy hitters, sorted.
	HeavyKeys []string
	// HeavySchemas maps each heavy key to the X2Y schema used for it.
	HeavySchemas map[string]*core.MappingSchema
	// xDest and yDest give, for every tuple index of the X (resp. Y)
	// relation, the global reducer indexes the tuple is replicated to. Light
	// and one-sided keys map to at most one reducer.
	xDest [][]int
	yDest [][]int
	// xBlock and yBlock give, for every tuple index, the ordinal of the
	// heavy-key block the tuple belongs to, or -1 for light and one-sided
	// tuples.
	xBlock []int
	yBlock []int
	// heavyXDest and heavyYDest give, per heavy key, the ascending global
	// reducer lists of every block, for destination reporting. (Owner
	// election for multiply-covered block pairs happens inside the executor,
	// which runs each heavy key's X2Y schema as its own job.)
	heavyXDest map[string][][]int
	heavyYDest map[string][][]int
	// xBlocks and yBlocks hold, per heavy key, the per-block tuple index
	// lists; Run turns them into the executor jobs' inputs.
	xBlocks map[string][]block
	yBlocks map[string][]block
}

// XDestinations returns the reducer assignments of the X-relation tuple with
// the given index.
func (p *Plan) XDestinations(i int) []int { return p.xDest[i] }

// YDestinations returns the reducer assignments of the Y-relation tuple with
// the given index.
func (p *Plan) YDestinations(i int) []int { return p.yDest[i] }

// BuildPlan detects heavy hitters and computes the full reducer plan for the
// two relations. A key is heavy when the tuples of both sides for that key
// together exceed the capacity q (an ordinary one-reducer-per-key join would
// overflow); every other key with tuples on both sides is light. Keys present
// on only one side produce no join output and are not shipped at all.
func BuildPlan(x, y *workload.Relation, cfg Config) (*Plan, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("skewjoin: capacity must be positive, got %d", cfg.Capacity)
	}
	xSizes, ySizes := x.KeySizes(), y.KeySizes()

	plan := &Plan{
		HeavySchemas: map[string]*core.MappingSchema{},
		xDest:        make([][]int, len(x.Tuples)),
		yDest:        make([][]int, len(y.Tuples)),
		xBlock:       fillNegative(len(x.Tuples)),
		yBlock:       fillNegative(len(y.Tuples)),
	}

	// Classify keys.
	var lightKeys []string
	for k, xs := range xSizes {
		ys, ok := ySizes[k]
		if !ok {
			continue // X-only key: no output
		}
		if core.Size(xs)+core.Size(ys) > cfg.Capacity {
			plan.HeavyKeys = append(plan.HeavyKeys, k)
		} else {
			lightKeys = append(lightKeys, k)
		}
	}
	sort.Strings(plan.HeavyKeys)
	sort.Strings(lightKeys)

	// Light keys: bin-pack into reducers of capacity q.
	lightReducerOf := make(map[string]int, len(lightKeys))
	if len(lightKeys) > 0 {
		items := make([]binpack.Item, len(lightKeys))
		for i, k := range lightKeys {
			items[i] = binpack.Item{ID: i, Size: core.Size(xSizes[k] + ySizes[k])}
		}
		packing, err := binpack.Pack(items, cfg.Capacity, cfg.policy())
		if err != nil {
			return nil, fmt.Errorf("skewjoin: packing light keys: %w", err)
		}
		for bin, b := range packing.Bins {
			for _, id := range b.Items {
				lightReducerOf[lightKeys[id]] = bin
			}
		}
		plan.LightReducers = packing.NumBins()
	}
	plan.NumReducers = plan.LightReducers

	// Heavy keys: block each side and solve an X2Y instance per key.
	heavyXBlocks := map[string][][]int{} // key -> per-block global reducer lists
	heavyYBlocks := map[string][][]int{}
	xBlocks := blockTuples(x, plan.HeavyKeys, cfg)
	yBlocks := blockTuples(y, plan.HeavyKeys, cfg)
	for _, k := range plan.HeavyKeys {
		xb, yb := xBlocks[k], yBlocks[k]
		xSet, err := core.NewInputSet(blockSizes(xb))
		if err != nil {
			return nil, fmt.Errorf("skewjoin: heavy key %q X blocks: %w", k, err)
		}
		ySet, err := core.NewInputSet(blockSizes(yb))
		if err != nil {
			return nil, fmt.Errorf("skewjoin: heavy key %q Y blocks: %w", k, err)
		}
		schema, err := heavySchema(xSet, ySet, cfg)
		if err != nil {
			return nil, fmt.Errorf("skewjoin: heavy key %q mapping schema: %w", k, err)
		}
		plan.HeavySchemas[k] = schema
		base := plan.NumReducers
		plan.NumReducers += schema.NumReducers()
		plan.HeavyReducers += schema.NumReducers()
		xAssign, yAssign := mr.AssignmentsX2Y(schema, xSet.Len(), ySet.Len())
		heavyXBlocks[k] = offsetAll(xAssign, base)
		heavyYBlocks[k] = offsetAll(yAssign, base)
	}
	plan.heavyXDest = heavyXBlocks
	plan.heavyYDest = heavyYBlocks
	plan.xBlocks = xBlocks
	plan.yBlocks = yBlocks

	// Per-tuple destinations.
	fillDestinations(plan.xDest, plan.xBlock, x, lightReducerOf, xBlocks, heavyXBlocks)
	fillDestinations(plan.yDest, plan.yBlock, y, lightReducerOf, yBlocks, heavyYBlocks)
	return plan, nil
}

// fillNegative returns a slice of n elements all set to -1.
func fillNegative(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

// heavySchema solves the X2Y instance of one heavy hitter. The default
// configuration plans through the shared planner facade: heavy keys with
// isomorphic block-size multisets — common when blocks are cut at a fixed
// byte boundary — are then solved once and served from the canonicalization
// cache. An explicitly chosen packing policy bypasses the portfolio so
// ablations measure the named heuristic.
func heavySchema(xSet, ySet *core.InputSet, cfg Config) (*core.MappingSchema, error) {
	if policy, defaulted := binpack.ResolvePolicy(cfg.Policy, cfg.PolicySet); !defaulted {
		return x2y.SolveWithOptions(xSet, ySet, cfg.Capacity,
			x2y.Options{Policy: policy, OptimizeSplit: true})
	}
	res, err := planner.Plan(context.Background(), planner.Request{
		Problem: core.ProblemX2Y, X: xSet, Y: ySet, Capacity: cfg.Capacity,
		// Await every portfolio member so results stay deterministic
		// under load (experiment tables depend on it).
		Budget: planner.Budget{Timeout: -1},
	})
	if err != nil {
		return nil, err
	}
	return res.Schema, nil
}

// block holds the tuple indexes of one block of a heavy key.
type block struct {
	tuples []int
	size   core.Size
}

// blockTuples cuts the heavy keys' tuples of a relation into blocks of at
// most cfg.blockSize() bytes (always at least one tuple per block) and
// returns, per heavy key, the per-block tuple index lists.
func blockTuples(rel *workload.Relation, heavyKeys []string, cfg Config) map[string][]block {
	heavy := make(map[string]bool, len(heavyKeys))
	for _, k := range heavyKeys {
		heavy[k] = true
	}
	blockSize := cfg.blockSize()
	// Collect the tuple indexes per heavy key first, then cut each key's
	// run into blocks; this avoids juggling pointers into growing slices.
	perKey := make(map[string][]int, len(heavyKeys))
	for i, t := range rel.Tuples {
		if heavy[t.Key] {
			perKey[t.Key] = append(perKey[t.Key], i)
		}
	}
	out := make(map[string][]block, len(heavyKeys))
	for k, idxs := range perKey {
		var blocks []block
		cur := block{}
		for _, ti := range idxs {
			sz := core.Size(rel.Tuples[ti].SizeBytes())
			if len(cur.tuples) > 0 && cur.size+sz > blockSize {
				blocks = append(blocks, cur)
				cur = block{}
			}
			cur.tuples = append(cur.tuples, ti)
			cur.size += sz
		}
		if len(cur.tuples) > 0 {
			blocks = append(blocks, cur)
		}
		out[k] = blocks
	}
	return out
}

func blockSizes(blocks []block) []core.Size {
	sizes := make([]core.Size, len(blocks))
	for i, b := range blocks {
		sizes[i] = b.size
	}
	return sizes
}

// offsetAll shifts every reducer index by base.
func offsetAll(assign [][]int, base int) [][]int {
	out := make([][]int, len(assign))
	for i, rs := range assign {
		out[i] = make([]int, len(rs))
		for j, r := range rs {
			out[i][j] = r + base
		}
	}
	return out
}

// fillDestinations assigns, for each tuple of the relation, the list of
// global reducers it is shipped to: the light reducer of its key, the heavy
// block assignments, or nothing when the key has no counterpart on the other
// side. blockOrd records the block ordinal of every heavy tuple.
func fillDestinations(dest [][]int, blockOrd []int, rel *workload.Relation,
	lightReducerOf map[string]int, blocks map[string][]block, heavyBlockDest map[string][][]int) {
	// Map tuple index -> block ordinal for heavy keys.
	blockOf := map[int]int{}
	blockKey := map[int]string{}
	for k, bs := range blocks {
		for bi, b := range bs {
			for _, ti := range b.tuples {
				blockOf[ti] = bi
				blockKey[ti] = k
			}
		}
	}
	for i, t := range rel.Tuples {
		if r, ok := lightReducerOf[t.Key]; ok {
			dest[i] = []int{r}
			continue
		}
		if k, ok := blockKey[i]; ok {
			dest[i] = heavyBlockDest[k][blockOf[i]]
			blockOrd[i] = blockOf[i]
			continue
		}
		// Neither light nor heavy: the key exists on one side only and
		// contributes nothing to the join.
		dest[i] = nil
	}
}
