package skewjoin

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mr"
	"repro/internal/workload"
)

// JoinedTuple is one output row 〈a, b, c〉 of the join X(A,B) ⋈ Y(B,C).
type JoinedTuple struct {
	A, B, C string
}

// Result is the outcome of a skew-join run.
type Result struct {
	// Plan is the reducer plan that drove the run.
	Plan *Plan
	// Joined holds the output rows when Config.CountOnly is false.
	Joined []JoinedTuple
	// JoinedCount is the number of output rows (always filled in).
	JoinedCount int64
	// Counters are the engine's measurements.
	Counters mr.Counters
}

// ErrEmptyRelation is returned when either input relation has no tuples.
var ErrEmptyRelation = errors.New("skewjoin: empty input relation")

// Run executes the skew join of x and y on the MapReduce engine under the
// given configuration.
func Run(x, y *workload.Relation, cfg Config) (*Result, error) {
	if x == nil || y == nil || len(x.Tuples) == 0 || len(y.Tuples) == 0 {
		return nil, ErrEmptyRelation
	}
	plan, err := BuildPlan(x, y, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}
	if plan.NumReducers == 0 {
		// No key appears on both sides: the join is empty.
		return res, nil
	}

	records := encodeRelations(x, y)
	job := &mr.Job{
		Name:              "skew-join",
		Mapper:            planMapper(plan),
		Reducer:           joinReducer(cfg),
		NumReducers:       plan.NumReducers,
		Partitioner:       mr.SchemaPartitioner,
		ReduceParallelism: cfg.Workers,
	}
	runRes, err := mr.NewEngine().Run(job, records)
	if err != nil {
		return nil, fmt.Errorf("skewjoin: running the job: %w", err)
	}
	res.Counters = runRes.Counters

	for _, rec := range runRes.FlatOutput() {
		if cfg.CountOnly {
			n, err := strconv.ParseInt(string(rec), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("skewjoin: malformed count record %q: %w", rec, err)
			}
			res.JoinedCount += n
			continue
		}
		jt, err := decodeJoined(rec)
		if err != nil {
			return nil, err
		}
		res.Joined = append(res.Joined, jt)
		res.JoinedCount++
	}
	return res, nil
}

// Record encoding.
//
// Input records carry the relation side and the tuple's index within its
// relation so the mapper can look up the planned destinations:
//
//	"X|<tupleIndex>|<key>|<payload>"
//
// Shuffle values drop the index (the reducer does not need it):
//
//	"X|<key>|<payload>"

func encodeRelations(x, y *workload.Relation) [][]byte {
	records := make([][]byte, 0, len(x.Tuples)+len(y.Tuples))
	for i, t := range x.Tuples {
		records = append(records, encodeInput('X', i, t))
	}
	for i, t := range y.Tuples {
		records = append(records, encodeInput('Y', i, t))
	}
	return records
}

func encodeInput(side byte, idx int, t workload.Tuple) []byte {
	return []byte(string(side) + "|" + strconv.Itoa(idx) + "|" + t.Key + "|" + t.Payload)
}

func decodeInput(rec []byte) (side byte, idx int, key, payload string, err error) {
	parts := strings.SplitN(string(rec), "|", 4)
	if len(parts) != 4 || len(parts[0]) != 1 {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed input record %q", rec)
	}
	idx, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed tuple index in %q: %w", rec, err)
	}
	return parts[0][0], idx, parts[2], parts[3], nil
}

func encodeShuffleValue(side byte, key, payload string) []byte {
	return []byte(string(side) + "|" + key + "|" + payload)
}

func decodeShuffleValue(v []byte) (side byte, key, payload string, err error) {
	parts := strings.SplitN(string(v), "|", 3)
	if len(parts) != 3 || len(parts[0]) != 1 {
		return 0, "", "", fmt.Errorf("skewjoin: malformed shuffle value %q", v)
	}
	return parts[0][0], parts[1], parts[2], nil
}

func encodeJoined(t JoinedTuple) []byte {
	return []byte(t.A + "|" + t.B + "|" + t.C)
}

func decodeJoined(rec []byte) (JoinedTuple, error) {
	parts := strings.SplitN(string(rec), "|", 3)
	if len(parts) != 3 {
		return JoinedTuple{}, fmt.Errorf("skewjoin: malformed joined record %q", rec)
	}
	return JoinedTuple{A: parts[0], B: parts[1], C: parts[2]}, nil
}

// planMapper replicates every tuple to the reducers the plan assigned it to.
func planMapper(plan *Plan) mr.Mapper {
	return mr.MapperFunc(func(record []byte, emit func(mr.Pair)) error {
		side, idx, key, payload, err := decodeInput(record)
		if err != nil {
			return err
		}
		var dests []int
		switch side {
		case 'X':
			if idx < 0 || idx >= len(plan.xDest) {
				return fmt.Errorf("skewjoin: X tuple index %d out of range", idx)
			}
			dests = plan.xDest[idx]
		case 'Y':
			if idx < 0 || idx >= len(plan.yDest) {
				return fmt.Errorf("skewjoin: Y tuple index %d out of range", idx)
			}
			dests = plan.yDest[idx]
		default:
			return fmt.Errorf("skewjoin: unknown relation side %q", string(side))
		}
		value := encodeShuffleValue(side, key, payload)
		for _, r := range dests {
			emit(mr.Pair{Key: mr.ReducerKey(r), Value: value})
		}
		return nil
	})
}

// joinReducer joins the X and Y tuples it receives, key by key.
func joinReducer(cfg Config) mr.Reducer {
	return mr.ReducerFunc(func(_ string, values [][]byte, emit func([]byte)) error {
		xByKey := map[string][]string{}
		yByKey := map[string][]string{}
		// Keys must be emitted in a deterministic order.
		var keys []string
		seen := map[string]bool{}
		for _, v := range values {
			side, key, payload, err := decodeShuffleValue(v)
			if err != nil {
				return err
			}
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
			switch side {
			case 'X':
				xByKey[key] = append(xByKey[key], payload)
			case 'Y':
				yByKey[key] = append(yByKey[key], payload)
			default:
				return fmt.Errorf("skewjoin: unknown side %q in shuffle value", string(side))
			}
		}
		for _, key := range keys {
			xv, yv := xByKey[key], yByKey[key]
			if len(xv) == 0 || len(yv) == 0 {
				continue
			}
			if cfg.CountOnly {
				emit([]byte(strconv.FormatInt(int64(len(xv))*int64(len(yv)), 10)))
				continue
			}
			for _, a := range xv {
				for _, c := range yv {
					emit(encodeJoined(JoinedTuple{A: a, B: key, C: c}))
				}
			}
		}
		return nil
	})
}

// ReferenceJoin computes the join with an in-memory hash join; it is the
// ground truth the MapReduce run is verified against.
func ReferenceJoin(x, y *workload.Relation) []JoinedTuple {
	yByKey := map[string][]string{}
	for _, t := range y.Tuples {
		yByKey[t.Key] = append(yByKey[t.Key], t.Payload)
	}
	var out []JoinedTuple
	for _, t := range x.Tuples {
		for _, c := range yByKey[t.Key] {
			out = append(out, JoinedTuple{A: t.Payload, B: t.Key, C: c})
		}
	}
	return out
}

// ReferenceJoinCount returns only the output cardinality of the join.
func ReferenceJoinCount(x, y *workload.Relation) int64 {
	yCounts := map[string]int64{}
	for _, t := range y.Tuples {
		yCounts[t.Key]++
	}
	var n int64
	for _, t := range x.Tuples {
		n += yCounts[t.Key]
	}
	return n
}
