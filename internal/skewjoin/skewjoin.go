package skewjoin

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/exec"
	"repro/internal/mr"
	"repro/internal/workload"
)

// JoinedTuple is one output row 〈a, b, c〉 of the join X(A,B) ⋈ Y(B,C).
type JoinedTuple struct {
	A, B, C string
}

// Result is the outcome of a skew-join run.
type Result struct {
	// Plan is the reducer plan that drove the run.
	Plan *Plan
	// Joined holds the output rows when Config.CountOnly is false.
	Joined []JoinedTuple
	// JoinedCount is the number of output rows (always filled in).
	JoinedCount int64
	// Counters are the engine's measurements, merged across the light-key job
	// and the per-heavy-key executor jobs.
	Counters mr.Counters
	// HeavyAudited reports whether every heavy key's executor job passed the
	// conformance audit (every block pair joined exactly once at its owning
	// reducer). It is true when there are no heavy keys.
	HeavyAudited bool
}

// ErrEmptyRelation is returned when either input relation has no tuples.
var ErrEmptyRelation = errors.New("skewjoin: empty input relation")

// Run executes the skew join of x and y under the given configuration. Light
// keys run as one bin-packed MapReduce job; every heavy key's X2Y mapping
// schema is compiled and executed by the schema-driven executor, one job per
// key, concurrently under a bounded pool.
func Run(x, y *workload.Relation, cfg Config) (*Result, error) {
	if x == nil || y == nil || len(x.Tuples) == 0 || len(y.Tuples) == 0 {
		return nil, ErrEmptyRelation
	}
	plan, err := BuildPlan(x, y, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan, HeavyAudited: true}
	if plan.NumReducers == 0 {
		// No key appears on both sides: the join is empty.
		return res, nil
	}

	var output [][]byte
	if plan.LightReducers > 0 {
		lightOut, counters, err := runLight(plan, x, y, cfg)
		if err != nil {
			return nil, err
		}
		output = append(output, lightOut...)
		res.Counters.Merge(counters)
	}
	if len(plan.HeavyKeys) > 0 {
		reqs := heavyRequests(plan, x, y, cfg)
		results, err := exec.RunBatch(context.Background(), reqs, exec.BatchOptions{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("skewjoin: heavy keys: %w", err)
		}
		for _, r := range results {
			output = append(output, r.Output...)
			res.Counters.Merge(&r.Counters)
			if !r.Audited {
				res.HeavyAudited = false
			}
		}
	}

	for _, rec := range output {
		if cfg.CountOnly {
			n, err := strconv.ParseInt(string(rec), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("skewjoin: malformed count record %q: %w", rec, err)
			}
			res.JoinedCount += n
			continue
		}
		jt, err := decodeJoined(rec)
		if err != nil {
			return nil, err
		}
		res.Joined = append(res.Joined, jt)
		res.JoinedCount++
	}
	return res, nil
}

// Record encoding.
//
// Input records carry the relation side and the tuple's index within its
// relation so the light mapper can look up the planned destination:
//
//	"X|<tupleIndex>|<key>|<payload>"
//
// Light shuffle values drop the index (the reducer groups by the embedded
// key):
//
//	"X|<key>|<payload>"
//
// The executor jobs of heavy keys do not use these encodings: their inputs
// are whole blocks, framed as length-prefixed payload lists (encodeBlock).

func encodeRelations(x, y *workload.Relation) [][]byte {
	records := make([][]byte, 0, len(x.Tuples)+len(y.Tuples))
	for i, t := range x.Tuples {
		records = append(records, encodeInput('X', i, t))
	}
	for i, t := range y.Tuples {
		records = append(records, encodeInput('Y', i, t))
	}
	return records
}

func encodeInput(side byte, idx int, t workload.Tuple) []byte {
	return []byte(string(side) + "|" + strconv.Itoa(idx) + "|" + t.Key + "|" + t.Payload)
}

func decodeInput(rec []byte) (side byte, idx int, key, payload string, err error) {
	parts := strings.SplitN(string(rec), "|", 4)
	if len(parts) != 4 || len(parts[0]) != 1 {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed input record %q", rec)
	}
	idx, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed tuple index in %q: %w", rec, err)
	}
	return parts[0][0], idx, parts[2], parts[3], nil
}

func encodeLightValue(side byte, key, payload string) []byte {
	return []byte(string(side) + "|" + key + "|" + payload)
}

func decodeLightValue(v []byte) (side byte, key, payload string, err error) {
	parts := strings.SplitN(string(v), "|", 3)
	if len(parts) != 3 || len(parts[0]) != 1 {
		return 0, "", "", fmt.Errorf("skewjoin: malformed shuffle value %q", v)
	}
	return parts[0][0], parts[1], parts[2], nil
}

func encodeJoined(t JoinedTuple) []byte {
	return []byte(t.A + "|" + t.B + "|" + t.C)
}

func decodeJoined(rec []byte) (JoinedTuple, error) {
	parts := strings.SplitN(string(rec), "|", 3)
	if len(parts) != 3 {
		return JoinedTuple{}, fmt.Errorf("skewjoin: malformed joined record %q", rec)
	}
	return JoinedTuple{A: parts[0], B: parts[1], C: parts[2]}, nil
}

// encodeBlock frames a heavy-key block as a length-prefixed payload list, so
// arbitrary payload bytes survive the round trip.
func encodeBlock(payloads []string) []byte {
	var b strings.Builder
	for _, p := range payloads {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	return []byte(b.String())
}

func decodeBlock(data []byte) ([]string, error) {
	var out []string
	for len(data) > 0 {
		cut := bytes.IndexByte(data, ':')
		if cut < 0 {
			return nil, fmt.Errorf("skewjoin: malformed block frame %q", data)
		}
		n, err := strconv.Atoi(string(data[:cut]))
		if err != nil || n < 0 || cut+1+n > len(data) {
			return nil, fmt.Errorf("skewjoin: malformed block frame %q", data)
		}
		out = append(out, string(data[cut+1:cut+1+n]))
		data = data[cut+1+n:]
	}
	return out, nil
}

// runLight executes the light keys as one MapReduce job: every both-sided
// light tuple goes to the single reducer its key was bin-packed into; the
// reducer joins key by key.
func runLight(plan *Plan, x, y *workload.Relation, cfg Config) ([][]byte, *mr.Counters, error) {
	job := &mr.Job{
		Name:              "skew-join-light",
		Mapper:            lightMapper(plan),
		Reducer:           lightReducer(cfg),
		NumReducers:       plan.LightReducers,
		Partitioner:       mr.SchemaPartitioner,
		ReduceParallelism: cfg.Workers,
	}
	runRes, err := mr.NewEngine().RunStream(context.Background(), job,
		mr.NewSliceSource(encodeRelations(x, y)), nil,
		mr.StreamOptions{MemoryBudget: cfg.MemoryBudget, SpillDir: cfg.SpillDir})
	if err != nil {
		return nil, nil, fmt.Errorf("skewjoin: running the light-key job: %w", err)
	}
	return runRes.FlatOutput(), &runRes.Counters, nil
}

// lightMapper ships every light, both-sided tuple to its planned reducer.
// Heavy tuples are handled by the executor jobs and one-sided tuples produce
// no join output; neither is shipped.
func lightMapper(plan *Plan) mr.Mapper {
	return mr.MapperFunc(func(record []byte, emit func(mr.Pair)) error {
		side, idx, key, payload, err := decodeInput(record)
		if err != nil {
			return err
		}
		var dests []int
		var blockOrd int
		switch side {
		case 'X':
			if idx < 0 || idx >= len(plan.xDest) {
				return fmt.Errorf("skewjoin: X tuple index %d out of range", idx)
			}
			dests, blockOrd = plan.xDest[idx], plan.xBlock[idx]
		case 'Y':
			if idx < 0 || idx >= len(plan.yDest) {
				return fmt.Errorf("skewjoin: Y tuple index %d out of range", idx)
			}
			dests, blockOrd = plan.yDest[idx], plan.yBlock[idx]
		default:
			return fmt.Errorf("skewjoin: unknown relation side %q", string(side))
		}
		if blockOrd >= 0 {
			return nil // heavy tuple: joined by its key's executor job
		}
		value := encodeLightValue(side, key, payload)
		for _, r := range dests {
			emit(mr.Pair{Key: mr.ReducerKey(r), Value: value})
		}
		return nil
	})
}

// lightReducer joins the X and Y tuples it receives, key by key. Several
// light keys may share a partition (they were bin-packed together); keys are
// processed in first-seen order, which is deterministic because the engine
// merges map output in record order.
func lightReducer(cfg Config) mr.Reducer {
	return mr.ReducerFunc(func(_ string, values [][]byte, emit func([]byte)) error {
		xByKey := map[string][]string{}
		yByKey := map[string][]string{}
		var keys []string
		seen := map[string]bool{}
		for _, v := range values {
			side, key, payload, err := decodeLightValue(v)
			if err != nil {
				return err
			}
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
			switch side {
			case 'X':
				xByKey[key] = append(xByKey[key], payload)
			case 'Y':
				yByKey[key] = append(yByKey[key], payload)
			default:
				return fmt.Errorf("skewjoin: unknown side %q in shuffle value", string(side))
			}
		}
		for _, key := range keys {
			emitJoin(cfg, key, xByKey[key], yByKey[key], emit)
		}
		return nil
	})
}

// emitJoin emits the join of one key's X and Y payload lists: the full cross
// product, or just its cardinality under CountOnly.
func emitJoin(cfg Config, key string, xv, yv []string, emit func([]byte)) {
	if len(xv) == 0 || len(yv) == 0 {
		return
	}
	if cfg.CountOnly {
		emit([]byte(strconv.FormatInt(int64(len(xv))*int64(len(yv)), 10)))
		return
	}
	for _, a := range xv {
		for _, c := range yv {
			emit(encodeJoined(JoinedTuple{A: a, B: key, C: c}))
		}
	}
}

// heavyRequests builds one executor request per heavy key: the key's X and Y
// blocks become the job inputs, its X2Y schema drives replication, and the
// pair function joins one X block with one Y block. Owner election — a
// schema may cover a block pair at several reducers — is the executor's.
// The pair function joins from the per-block payload tables rather than
// re-decoding the shipped frames: a block meets every block of the other
// side, so per-pair decoding would multiply the decode work by the opposite
// side's block count.
func heavyRequests(plan *Plan, x, y *workload.Relation, cfg Config) []exec.Request {
	reqs := make([]exec.Request, 0, len(plan.HeavyKeys))
	for _, k := range plan.HeavyKeys {
		key := k
		xPayloads, xInputs := blockInputs(x, plan.xBlocks[key])
		yPayloads, yInputs := blockInputs(y, plan.yBlocks[key])
		reqs = append(reqs, exec.Request{
			Name:         "skew-join-heavy:" + key,
			Schema:       plan.HeavySchemas[key],
			XInputs:      xInputs,
			YInputs:      yInputs,
			Workers:      cfg.Workers,
			MemoryBudget: cfg.MemoryBudget,
			SpillDir:     cfg.SpillDir,
			Pair: func(a, b exec.Record, emit func([]byte)) error {
				emitJoin(cfg, key, xPayloads[a.ID], yPayloads[b.ID], emit)
				return nil
			},
		})
	}
	return reqs
}

// blockInputs collects each block's tuple payloads and frames them as one
// executor input per block.
func blockInputs(rel *workload.Relation, blocks []block) ([][]string, [][]byte) {
	payloads := make([][]string, len(blocks))
	inputs := make([][]byte, len(blocks))
	for i, b := range blocks {
		ps := make([]string, len(b.tuples))
		for j, ti := range b.tuples {
			ps[j] = rel.Tuples[ti].Payload
		}
		payloads[i] = ps
		inputs[i] = encodeBlock(ps)
	}
	return payloads, inputs
}

// ReferenceJoin computes the join with an in-memory hash join; it is the
// ground truth the MapReduce run is verified against.
func ReferenceJoin(x, y *workload.Relation) []JoinedTuple {
	yByKey := map[string][]string{}
	for _, t := range y.Tuples {
		yByKey[t.Key] = append(yByKey[t.Key], t.Payload)
	}
	var out []JoinedTuple
	for _, t := range x.Tuples {
		for _, c := range yByKey[t.Key] {
			out = append(out, JoinedTuple{A: t.Payload, B: t.Key, C: c})
		}
	}
	return out
}

// ReferenceJoinCount returns only the output cardinality of the join.
func ReferenceJoinCount(x, y *workload.Relation) int64 {
	yCounts := map[string]int64{}
	for _, t := range y.Tuples {
		yCounts[t.Key]++
	}
	var n int64
	for _, t := range x.Tuples {
		n += yCounts[t.Key]
	}
	return n
}
