package skewjoin

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mr"
	"repro/internal/workload"
)

// JoinedTuple is one output row 〈a, b, c〉 of the join X(A,B) ⋈ Y(B,C).
type JoinedTuple struct {
	A, B, C string
}

// Result is the outcome of a skew-join run.
type Result struct {
	// Plan is the reducer plan that drove the run.
	Plan *Plan
	// Joined holds the output rows when Config.CountOnly is false.
	Joined []JoinedTuple
	// JoinedCount is the number of output rows (always filled in).
	JoinedCount int64
	// Counters are the engine's measurements.
	Counters mr.Counters
}

// ErrEmptyRelation is returned when either input relation has no tuples.
var ErrEmptyRelation = errors.New("skewjoin: empty input relation")

// Run executes the skew join of x and y on the MapReduce engine under the
// given configuration.
func Run(x, y *workload.Relation, cfg Config) (*Result, error) {
	if x == nil || y == nil || len(x.Tuples) == 0 || len(y.Tuples) == 0 {
		return nil, ErrEmptyRelation
	}
	plan, err := BuildPlan(x, y, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}
	if plan.NumReducers == 0 {
		// No key appears on both sides: the join is empty.
		return res, nil
	}

	records := encodeRelations(x, y)
	job := &mr.Job{
		Name:              "skew-join",
		Mapper:            planMapper(plan),
		Reducer:           joinReducer(cfg, plan),
		NumReducers:       plan.NumReducers,
		Partitioner:       mr.SchemaPartitioner,
		ReduceParallelism: cfg.Workers,
	}
	runRes, err := mr.NewEngine().Run(job, records)
	if err != nil {
		return nil, fmt.Errorf("skewjoin: running the job: %w", err)
	}
	res.Counters = runRes.Counters

	for _, rec := range runRes.FlatOutput() {
		if cfg.CountOnly {
			n, err := strconv.ParseInt(string(rec), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("skewjoin: malformed count record %q: %w", rec, err)
			}
			res.JoinedCount += n
			continue
		}
		jt, err := decodeJoined(rec)
		if err != nil {
			return nil, err
		}
		res.Joined = append(res.Joined, jt)
		res.JoinedCount++
	}
	return res, nil
}

// Record encoding.
//
// Input records carry the relation side and the tuple's index within its
// relation so the mapper can look up the planned destinations:
//
//	"X|<tupleIndex>|<key>|<payload>"
//
// Shuffle values replace the index with the tuple's heavy-key block ordinal
// (-1 for light and one-sided tuples), which the reducer needs to elect one
// owner per block pair:
//
//	"X|<block>|<key>|<payload>"

func encodeRelations(x, y *workload.Relation) [][]byte {
	records := make([][]byte, 0, len(x.Tuples)+len(y.Tuples))
	for i, t := range x.Tuples {
		records = append(records, encodeInput('X', i, t))
	}
	for i, t := range y.Tuples {
		records = append(records, encodeInput('Y', i, t))
	}
	return records
}

func encodeInput(side byte, idx int, t workload.Tuple) []byte {
	return []byte(string(side) + "|" + strconv.Itoa(idx) + "|" + t.Key + "|" + t.Payload)
}

func decodeInput(rec []byte) (side byte, idx int, key, payload string, err error) {
	parts := strings.SplitN(string(rec), "|", 4)
	if len(parts) != 4 || len(parts[0]) != 1 {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed input record %q", rec)
	}
	idx, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed tuple index in %q: %w", rec, err)
	}
	return parts[0][0], idx, parts[2], parts[3], nil
}

func encodeShuffleValue(side byte, block int, key, payload string) []byte {
	return []byte(string(side) + "|" + strconv.Itoa(block) + "|" + key + "|" + payload)
}

func decodeShuffleValue(v []byte) (side byte, block int, key, payload string, err error) {
	parts := strings.SplitN(string(v), "|", 4)
	if len(parts) != 4 || len(parts[0]) != 1 {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed shuffle value %q", v)
	}
	block, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("skewjoin: malformed block ordinal in %q: %w", v, err)
	}
	return parts[0][0], block, parts[2], parts[3], nil
}

func encodeJoined(t JoinedTuple) []byte {
	return []byte(t.A + "|" + t.B + "|" + t.C)
}

func decodeJoined(rec []byte) (JoinedTuple, error) {
	parts := strings.SplitN(string(rec), "|", 3)
	if len(parts) != 3 {
		return JoinedTuple{}, fmt.Errorf("skewjoin: malformed joined record %q", rec)
	}
	return JoinedTuple{A: parts[0], B: parts[1], C: parts[2]}, nil
}

// planMapper replicates every tuple to the reducers the plan assigned it to.
func planMapper(plan *Plan) mr.Mapper {
	return mr.MapperFunc(func(record []byte, emit func(mr.Pair)) error {
		side, idx, key, payload, err := decodeInput(record)
		if err != nil {
			return err
		}
		var dests []int
		block := -1
		switch side {
		case 'X':
			if idx < 0 || idx >= len(plan.xDest) {
				return fmt.Errorf("skewjoin: X tuple index %d out of range", idx)
			}
			dests, block = plan.xDest[idx], plan.xBlock[idx]
		case 'Y':
			if idx < 0 || idx >= len(plan.yDest) {
				return fmt.Errorf("skewjoin: Y tuple index %d out of range", idx)
			}
			dests, block = plan.yDest[idx], plan.yBlock[idx]
		default:
			return fmt.Errorf("skewjoin: unknown relation side %q", string(side))
		}
		value := encodeShuffleValue(side, block, key, payload)
		for _, r := range dests {
			emit(mr.Pair{Key: mr.ReducerKey(r), Value: value})
		}
		return nil
	})
}

// joinReducer joins the X and Y tuples it receives, key by key, block pair
// by block pair. A mapping schema is free to assign a heavy key's block pair
// to more than one reducer (the constructive grid never does, but the
// planner portfolio's greedy and exact members may); when a plan is given,
// only the lowest-indexed reducer holding both blocks — their owner — emits
// that pair's output. The hash-join baseline passes a nil plan: every key
// lands on exactly one reducer there, so no ownership check is needed.
func joinReducer(cfg Config, plan *Plan) mr.Reducer {
	return mr.ReducerFunc(func(reducerKey string, values [][]byte, emit func([]byte)) error {
		// A key is either light (every tuple ships with block -1, at most one
		// reducer holds it) or heavy (every tuple carries its block ordinal).
		// Light keys — the bulk of most workloads — stay on the flat-slice
		// path; only heavy keys pay for per-block grouping and ownership.
		xLight := map[string][]string{}
		yLight := map[string][]string{}
		xHeavy := map[string]map[int][]string{}
		yHeavy := map[string]map[int][]string{}
		// Keys must be emitted in a deterministic order.
		var keys []string
		seen := map[string]bool{}
		for _, v := range values {
			side, block, key, payload, err := decodeShuffleValue(v)
			if err != nil {
				return err
			}
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
			var light map[string][]string
			var heavy map[string]map[int][]string
			switch side {
			case 'X':
				light, heavy = xLight, xHeavy
			case 'Y':
				light, heavy = yLight, yHeavy
			default:
				return fmt.Errorf("skewjoin: unknown side %q in shuffle value", string(side))
			}
			if block < 0 {
				light[key] = append(light[key], payload)
				continue
			}
			if heavy[key] == nil {
				heavy[key] = map[int][]string{}
			}
			heavy[key][block] = append(heavy[key][block], payload)
		}
		reducerIdx := -1
		if plan != nil {
			idx, err := mr.ParseReducerKey(reducerKey)
			if err != nil {
				return fmt.Errorf("skewjoin: unexpected reducer key %q: %w", reducerKey, err)
			}
			reducerIdx = idx
		}
		emitPair := func(key string, xv, yv []string) {
			if cfg.CountOnly {
				emit([]byte(strconv.FormatInt(int64(len(xv))*int64(len(yv)), 10)))
				return
			}
			for _, a := range xv {
				for _, c := range yv {
					emit(encodeJoined(JoinedTuple{A: a, B: key, C: c}))
				}
			}
		}
		for _, key := range keys {
			if xv, yv := xLight[key], yLight[key]; len(xv) > 0 && len(yv) > 0 {
				emitPair(key, xv, yv)
				continue
			}
			xBlocks, yBlocks := xHeavy[key], yHeavy[key]
			if len(xBlocks) == 0 || len(yBlocks) == 0 {
				continue
			}
			yOrds := sortedBlockOrdinals(yBlocks)
			for _, bx := range sortedBlockOrdinals(xBlocks) {
				for _, by := range yOrds {
					if plan != nil && plan.pairOwner(key, bx, by) != reducerIdx {
						continue
					}
					emitPair(key, xBlocks[bx], yBlocks[by])
				}
			}
		}
		return nil
	})
}

func sortedBlockOrdinals(blocks map[int][]string) []int {
	out := make([]int, 0, len(blocks))
	for b := range blocks {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// ReferenceJoin computes the join with an in-memory hash join; it is the
// ground truth the MapReduce run is verified against.
func ReferenceJoin(x, y *workload.Relation) []JoinedTuple {
	yByKey := map[string][]string{}
	for _, t := range y.Tuples {
		yByKey[t.Key] = append(yByKey[t.Key], t.Payload)
	}
	var out []JoinedTuple
	for _, t := range x.Tuples {
		for _, c := range yByKey[t.Key] {
			out = append(out, JoinedTuple{A: t.Payload, B: t.Key, C: c})
		}
	}
	return out
}

// ReferenceJoinCount returns only the output cardinality of the join.
func ReferenceJoinCount(x, y *workload.Relation) int64 {
	yCounts := map[string]int64{}
	for _, t := range y.Tuples {
		yCounts[t.Key]++
	}
	var n int64
	for _, t := range x.Tuples {
		n += yCounts[t.Key]
	}
	return n
}
