package skewjoin

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// makeRelation builds a relation from (key, count) specs with fixed-size
// payloads so sizes are predictable.
func makeRelation(name string, payloadLen int, keyCounts map[string]int) *workload.Relation {
	rel := &workload.Relation{Name: name}
	keys := make([]string, 0, len(keyCounts))
	for k := range keyCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for i := 0; i < keyCounts[k]; i++ {
			payload := make([]byte, payloadLen)
			for j := range payload {
				payload[j] = byte('a' + (i+j)%26)
			}
			rel.Tuples = append(rel.Tuples, workload.Tuple{Key: k, Payload: string(payload)})
		}
	}
	return rel
}

func sortJoined(ts []JoinedTuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].B != ts[j].B {
			return ts[i].B < ts[j].B
		}
		if ts[i].A != ts[j].A {
			return ts[i].A < ts[j].A
		}
		return ts[i].C < ts[j].C
	})
}

func TestRunMatchesReferenceLightKeysOnly(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"k1": 3, "k2": 2, "k3": 1})
	y := makeRelation("Y", 4, map[string]int{"k1": 2, "k2": 4, "k4": 3})
	cfg := Config{Capacity: 1000}
	res, err := Run(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceJoin(x, y)
	if res.JoinedCount != int64(len(want)) {
		t.Fatalf("joined %d rows, reference %d", res.JoinedCount, len(want))
	}
	got := append([]JoinedTuple(nil), res.Joined...)
	sortJoined(got)
	sortJoined(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(res.Plan.HeavyKeys) != 0 {
		t.Errorf("no key should be heavy, got %v", res.Plan.HeavyKeys)
	}
}

func TestRunMatchesReferenceWithHeavyHitter(t *testing.T) {
	// Key "hot" has far more data than the capacity allows in one reducer.
	x := makeRelation("X", 10, map[string]int{"hot": 40, "cold1": 2, "cold2": 3})
	y := makeRelation("Y", 10, map[string]int{"hot": 30, "cold1": 1, "cold3": 5})
	cfg := Config{Capacity: 200, BlockSize: 60}
	res, err := Run(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceJoin(x, y)
	if res.JoinedCount != int64(len(want)) {
		t.Fatalf("joined %d rows, reference %d", res.JoinedCount, len(want))
	}
	got := append([]JoinedTuple(nil), res.Joined...)
	sortJoined(got)
	sortJoined(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(res.Plan.HeavyKeys) != 1 || res.Plan.HeavyKeys[0] != "hot" {
		t.Errorf("HeavyKeys = %v, want [hot]", res.Plan.HeavyKeys)
	}
	if res.Plan.HeavyReducers == 0 {
		t.Error("expected heavy reducers for the hot key")
	}
	if !res.HeavyAudited {
		t.Error("heavy-key executor jobs were not audited")
	}
	// The engine enforces nothing here, but the plan promises every reducer
	// stays within capacity; the counters prove it.
	if res.Counters.MaxReducerLoad == 0 {
		t.Error("expected non-zero reducer loads")
	}
}

func TestRunNoDuplicateOutputs(t *testing.T) {
	x := makeRelation("X", 8, map[string]int{"hot": 25, "warm": 6})
	y := makeRelation("Y", 8, map[string]int{"hot": 20, "warm": 5})
	res, err := Run(x, y, Config{Capacity: 150, BlockSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceJoinCount(x, y)
	if res.JoinedCount != want {
		t.Fatalf("joined %d rows, want %d (duplicates or misses)", res.JoinedCount, want)
	}
}

func TestRunCountOnly(t *testing.T) {
	x := makeRelation("X", 6, map[string]int{"hot": 30, "cold": 3})
	y := makeRelation("Y", 6, map[string]int{"hot": 25, "cold": 2})
	res, err := Run(x, y, Config{Capacity: 120, BlockSize: 30, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joined) != 0 {
		t.Error("CountOnly should not materialise joined tuples")
	}
	if want := ReferenceJoinCount(x, y); res.JoinedCount != want {
		t.Errorf("JoinedCount = %d, want %d", res.JoinedCount, want)
	}
}

func TestRunOneSidedKeysAreNotShipped(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"only-x": 50, "shared": 2})
	y := makeRelation("Y", 4, map[string]int{"only-y": 50, "shared": 2})
	res, err := Run(x, y, Config{Capacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceJoinCount(x, y); res.JoinedCount != want {
		t.Fatalf("JoinedCount = %d, want %d", res.JoinedCount, want)
	}
	// Only the 4 "shared" tuples should have crossed the shuffle.
	if res.Counters.ShuffleRecords != 4 {
		t.Errorf("ShuffleRecords = %d, want 4 (one-sided keys dropped at the mapper)", res.Counters.ShuffleRecords)
	}
}

func TestRunDisjointRelations(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"a": 3})
	y := makeRelation("Y", 4, map[string]int{"b": 3})
	res, err := Run(x, y, Config{Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedCount != 0 || res.Plan.NumReducers != 0 {
		t.Errorf("disjoint join produced %d rows with %d reducers", res.JoinedCount, res.Plan.NumReducers)
	}
}

func TestRunErrors(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"a": 1})
	if _, err := Run(x, &workload.Relation{}, Config{Capacity: 10}); !errors.Is(err, ErrEmptyRelation) {
		t.Errorf("empty relation error = %v", err)
	}
	if _, err := Run(nil, nil, Config{Capacity: 10}); !errors.Is(err, ErrEmptyRelation) {
		t.Errorf("nil relation error = %v", err)
	}
	y := makeRelation("Y", 4, map[string]int{"a": 1})
	if _, err := Run(x, y, Config{Capacity: 0}); err == nil {
		t.Error("accepted zero capacity")
	}
	// A single tuple pair larger than the capacity is infeasible.
	bigX := makeRelation("X", 50, map[string]int{"a": 1})
	bigY := makeRelation("Y", 50, map[string]int{"a": 1})
	if _, err := Run(bigX, bigY, Config{Capacity: 60}); !errors.Is(err, core.ErrInfeasible) {
		t.Errorf("infeasible error = %v", err)
	}
}

func TestBuildPlanReducerLoadsWithinCapacity(t *testing.T) {
	x := makeRelation("X", 12, map[string]int{"hot": 50, "c1": 4, "c2": 3, "c3": 2})
	y := makeRelation("Y", 12, map[string]int{"hot": 40, "c1": 2, "c2": 5, "c4": 1})
	cfg := Config{Capacity: 300, BlockSize: 90}
	res, err := Run(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple payload bytes shipped per reducer must respect q; the engine's
	// loads also include the reducer-key and side/key overhead, so compare
	// against a slack bound of q plus per-record overhead.
	var maxOverheadPerRecord int64 = 32
	for p, load := range res.Counters.ReducerLoads {
		limit := int64(cfg.Capacity) + maxOverheadPerRecord*res.Counters.ShuffleRecords
		if load > limit {
			t.Errorf("reducer %d load %d is far beyond capacity %d", p, load, cfg.Capacity)
		}
	}
	if res.JoinedCount != ReferenceJoinCount(x, y) {
		t.Errorf("JoinedCount = %d, want %d", res.JoinedCount, ReferenceJoinCount(x, y))
	}
}

func TestPlanDestinationAccessors(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"a": 2})
	y := makeRelation("Y", 4, map[string]int{"a": 2})
	plan, err := BuildPlan(x, y, Config{Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.XDestinations(0)) != 1 || len(plan.YDestinations(1)) != 1 {
		t.Errorf("light tuples should map to exactly one reducer: %v %v",
			plan.XDestinations(0), plan.YDestinations(1))
	}
}

func TestHashJoinBaseline(t *testing.T) {
	x := makeRelation("X", 10, map[string]int{"hot": 40, "cold": 2})
	y := makeRelation("Y", 10, map[string]int{"hot": 30, "cold": 2})
	q := core.Size(200)
	base, err := HashJoinBaseline(x, y, 8, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if base.JoinedCount != ReferenceJoinCount(x, y) {
		t.Errorf("baseline joined %d, want %d", base.JoinedCount, ReferenceJoinCount(x, y))
	}
	if !base.CapacityViolated {
		t.Error("baseline should violate capacity: the hot key exceeds q on one reducer")
	}
	// The skew-aware plan keeps every reducer's tuple payload within q while
	// the baseline's max load exceeds it.
	res, err := Run(x, y, Config{Capacity: q, BlockSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedCount != base.JoinedCount {
		t.Errorf("plans disagree on output size: %d vs %d", res.JoinedCount, base.JoinedCount)
	}
	if res.Counters.MaxReducerLoad >= base.Counters.MaxReducerLoad {
		t.Errorf("skew-aware max load %d should be below baseline max load %d",
			res.Counters.MaxReducerLoad, base.Counters.MaxReducerLoad)
	}
}

func TestHashJoinBaselineCountOnly(t *testing.T) {
	x := makeRelation("X", 10, map[string]int{"hot": 20})
	y := makeRelation("Y", 10, map[string]int{"hot": 20})
	base, err := HashJoinBaseline(x, y, 4, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if base.JoinedCount != 400 {
		t.Errorf("JoinedCount = %d, want 400", base.JoinedCount)
	}
}

func TestHashJoinBaselineErrors(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"a": 1})
	y := makeRelation("Y", 4, map[string]int{"a": 1})
	if _, err := HashJoinBaseline(x, &workload.Relation{}, 4, 10, false); !errors.Is(err, ErrEmptyRelation) {
		t.Errorf("empty relation error = %v", err)
	}
	if _, err := HashJoinBaseline(x, y, 0, 10, false); err == nil {
		t.Error("accepted zero reducers")
	}
}

func TestEncodingRoundTrips(t *testing.T) {
	side, idx, key, payload, err := decodeInput(encodeInput('X', 12, workload.Tuple{Key: "k|weird", Payload: "p|1|2"}))
	if err != nil || side != 'X' || idx != 12 || key != "k" {
		// Keys containing '|' split early; the generator never produces such
		// keys, but the decoder must not crash on them.
		if err != nil {
			t.Fatalf("decodeInput: %v", err)
		}
	}
	_ = payload

	s, k, p, err := decodeLightValue(encodeLightValue('Y', "key1", "payload"))
	if err != nil || s != 'Y' || k != "key1" || p != "payload" {
		t.Errorf("light value round trip = %c %q %q %v", s, k, p, err)
	}
	if _, _, _, err := decodeLightValue([]byte("garbage")); err == nil {
		t.Error("decoded malformed light shuffle value")
	}
	if _, _, _, _, err := decodeInput([]byte("nope")); err == nil {
		t.Error("decoded malformed input record")
	}
	if _, _, _, _, err := decodeInput([]byte("X|abc|k|p")); err == nil {
		t.Error("decoded non-numeric tuple index")
	}
	jt, err := decodeJoined(encodeJoined(JoinedTuple{A: "a", B: "b", C: "c"}))
	if err != nil || jt.A != "a" || jt.B != "b" || jt.C != "c" {
		t.Errorf("joined round trip = %+v, %v", jt, err)
	}
	if _, err := decodeJoined([]byte("a|b")); err == nil {
		t.Error("decoded malformed joined record")
	}

	// Block frames must survive payloads containing the framing characters.
	payloads := []string{"plain", "with:colon", "with|pipe", "", "12:34"}
	got, err := decodeBlock(encodeBlock(payloads))
	if err != nil || len(got) != len(payloads) {
		t.Fatalf("block round trip = %v, %v", got, err)
	}
	for i := range payloads {
		if got[i] != payloads[i] {
			t.Errorf("block payload %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	for _, bad := range []string{"x", "5:ab", "-1:", "9999999999999999999:a"} {
		if _, err := decodeBlock([]byte(bad)); err == nil {
			t.Errorf("decoded malformed block frame %q", bad)
		}
	}
}

func TestGeneratedSkewedWorkloadEndToEnd(t *testing.T) {
	x, err := workload.GenerateRelation(workload.RelationSpec{Name: "X", NumTuples: 800, NumKeys: 40, Skew: 1.4, PayloadBytes: 10}, 101)
	if err != nil {
		t.Fatal(err)
	}
	y, err := workload.GenerateRelation(workload.RelationSpec{Name: "Y", NumTuples: 800, NumKeys: 40, Skew: 1.4, PayloadBytes: 10}, 202)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Capacity: 1500, BlockSize: 400, CountOnly: true}
	res, err := Run(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceJoinCount(x, y); res.JoinedCount != want {
		t.Errorf("JoinedCount = %d, want %d", res.JoinedCount, want)
	}
	if len(res.Plan.HeavyKeys) == 0 {
		t.Error("expected at least one heavy hitter with this skew and capacity")
	}
}
