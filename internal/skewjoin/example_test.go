package skewjoin_test

import (
	"fmt"

	"repro/internal/skewjoin"
	"repro/internal/workload"
)

// Join two tiny relations on a key that is too heavy for one reducer: the
// planner detects the heavy hitter, splits its tuples into blocks, and covers
// every block pair with an X2Y mapping schema. The output matches the
// reference hash join.
func ExampleRun() {
	x := &workload.Relation{Name: "X"}
	y := &workload.Relation{Name: "Y"}
	for i := 0; i < 8; i++ {
		x.Tuples = append(x.Tuples, workload.Tuple{Key: "hot", Payload: fmt.Sprintf("a%02d", i)})
		y.Tuples = append(y.Tuples, workload.Tuple{Key: "hot", Payload: fmt.Sprintf("c%02d", i)})
	}
	x.Tuples = append(x.Tuples, workload.Tuple{Key: "cold", Payload: "a99"})
	y.Tuples = append(y.Tuples, workload.Tuple{Key: "cold", Payload: "c99"})

	res, err := skewjoin.Run(x, y, skewjoin.Config{
		Capacity:  48, // bytes of tuples per reducer: far below the hot key's volume
		BlockSize: 14,
		CountOnly: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("heavy hitters:", res.Plan.HeavyKeys)
	fmt.Println("output rows:", res.JoinedCount)
	fmt.Println("reference rows:", skewjoin.ReferenceJoinCount(x, y))
	// Output:
	// heavy hitters: [hot]
	// output rows: 65
	// reference rows: 65
}
