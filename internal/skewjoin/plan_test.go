package skewjoin

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestBlockTuplesRespectsBlockSize(t *testing.T) {
	rel := makeRelation("X", 10, map[string]int{"hot": 17, "cold": 3})
	cfg := Config{Capacity: 400, BlockSize: 45}
	blocks := blockTuples(rel, []string{"hot"}, cfg)
	hot := blocks["hot"]
	if len(hot) == 0 {
		t.Fatal("no blocks for the heavy key")
	}
	total := 0
	for i, b := range hot {
		if len(b.tuples) == 0 {
			t.Fatalf("block %d is empty", i)
		}
		var size core.Size
		for _, ti := range b.tuples {
			if rel.Tuples[ti].Key != "hot" {
				t.Fatalf("block %d contains a tuple of key %q", i, rel.Tuples[ti].Key)
			}
			size += core.Size(rel.Tuples[ti].SizeBytes())
		}
		if size != b.size {
			t.Fatalf("block %d records size %d, tuples sum to %d", i, b.size, size)
		}
		// Blocks may exceed the block size only when a single tuple does.
		if b.size > cfg.BlockSize && len(b.tuples) > 1 {
			t.Fatalf("block %d has size %d > block size %d with %d tuples", i, b.size, cfg.BlockSize, len(b.tuples))
		}
		total += len(b.tuples)
	}
	if total != 17 {
		t.Fatalf("blocks hold %d tuples, want 17", total)
	}
	if _, ok := blocks["cold"]; ok {
		t.Error("light key was blocked")
	}
}

func TestBlockTuplesSingleOversizedTuple(t *testing.T) {
	rel := &workload.Relation{Name: "X", Tuples: []workload.Tuple{
		{Key: "hot", Payload: "this-payload-is-much-longer-than-a-block"},
		{Key: "hot", Payload: "x"},
	}}
	cfg := Config{Capacity: 100, BlockSize: 10}
	blocks := blockTuples(rel, []string{"hot"}, cfg)
	if len(blocks["hot"]) != 2 {
		t.Fatalf("expected 2 blocks (oversized tuple alone), got %d", len(blocks["hot"]))
	}
	if len(blocks["hot"][0].tuples) != 1 {
		t.Errorf("oversized tuple should sit alone in its block")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Capacity: 100}
	if c.blockSize() != 25 {
		t.Errorf("default block size = %d, want capacity/4", c.blockSize())
	}
	c = Config{Capacity: 2}
	if c.blockSize() != 1 {
		t.Errorf("tiny capacity block size = %d, want 1", c.blockSize())
	}
	c = Config{Capacity: 100, BlockSize: 40}
	if c.blockSize() != 40 {
		t.Errorf("explicit block size = %d, want 40", c.blockSize())
	}
	if got := (Config{}).policy(); got.String() != "first-fit-decreasing" {
		t.Errorf("default policy = %v", got)
	}
}

func TestBuildPlanHeavySchemasValidate(t *testing.T) {
	x := makeRelation("X", 12, map[string]int{"hot1": 30, "hot2": 25, "c": 2})
	y := makeRelation("Y", 12, map[string]int{"hot1": 28, "hot2": 20, "c": 3})
	cfg := Config{Capacity: 250, BlockSize: 70}
	plan, err := BuildPlan(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.HeavyKeys) != 2 {
		t.Fatalf("HeavyKeys = %v, want two heavy keys", plan.HeavyKeys)
	}
	xBlocks := blockTuples(x, plan.HeavyKeys, cfg)
	yBlocks := blockTuples(y, plan.HeavyKeys, cfg)
	for _, k := range plan.HeavyKeys {
		schema := plan.HeavySchemas[k]
		if schema == nil {
			t.Fatalf("missing schema for heavy key %q", k)
		}
		xs, err := core.NewInputSet(blockSizes(xBlocks[k]))
		if err != nil {
			t.Fatal(err)
		}
		ys, err := core.NewInputSet(blockSizes(yBlocks[k]))
		if err != nil {
			t.Fatal(err)
		}
		if err := schema.ValidateX2Y(xs, ys); err != nil {
			t.Errorf("schema for heavy key %q invalid: %v", k, err)
		}
	}
	// Every tuple of a both-sided key must have at least one destination and
	// all destinations must be in range.
	for i := range x.Tuples {
		for _, r := range plan.XDestinations(i) {
			if r < 0 || r >= plan.NumReducers {
				t.Fatalf("X tuple %d routed to out-of-range reducer %d", i, r)
			}
		}
	}
	for i, tp := range y.Tuples {
		dests := plan.YDestinations(i)
		if len(dests) == 0 && tp.Key != "" {
			// Every Y key here exists on the X side, so every tuple must go
			// somewhere.
			t.Fatalf("Y tuple %d (key %q) has no destination", i, tp.Key)
		}
	}
	if plan.NumReducers != plan.LightReducers+plan.HeavyReducers {
		t.Errorf("reducer accounting: %d != %d + %d", plan.NumReducers, plan.LightReducers, plan.HeavyReducers)
	}
}

func TestBuildPlanLightKeysShareReducersWithinCapacity(t *testing.T) {
	x := makeRelation("X", 10, map[string]int{"a": 2, "b": 2, "c": 2, "d": 2, "e": 2})
	y := makeRelation("Y", 10, map[string]int{"a": 2, "b": 2, "c": 2, "d": 2, "e": 2})
	cfg := Config{Capacity: 200}
	plan, err := BuildPlan(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.HeavyKeys) != 0 {
		t.Fatalf("unexpected heavy keys %v", plan.HeavyKeys)
	}
	// All five keys weigh 5*(2+2)*(key+payload bytes) ... well within one or
	// two bins; the point is that keys share reducers instead of one each.
	if plan.LightReducers >= 5 {
		t.Errorf("light keys were not grouped: %d reducers for 5 keys", plan.LightReducers)
	}
}

func TestBuildPlanRejectsNonPositiveCapacity(t *testing.T) {
	x := makeRelation("X", 4, map[string]int{"a": 1})
	y := makeRelation("Y", 4, map[string]int{"a": 1})
	if _, err := BuildPlan(x, y, Config{Capacity: 0}); err == nil {
		t.Error("accepted zero capacity")
	}
}
