package skewjoin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/workload"
)

// BaselineResult describes a plain hash-join run used as the comparison point
// for the skew-aware plan: every tuple of key k goes to reducer hash(k) % R,
// so a heavy hitter lands entirely on one reducer.
type BaselineResult struct {
	// NumReducers is the number of reduce partitions used.
	NumReducers int
	// JoinedCount is the number of output rows.
	JoinedCount int64
	// Counters are the engine's measurements; MaxReducerLoad shows the skew.
	Counters mr.Counters
	// CapacityViolated reports whether some reducer received more than the
	// capacity q — i.e. whether the plain hash join would simply not fit the
	// paper's reducer-capacity model.
	CapacityViolated bool
}

// HashJoinBaseline runs the ordinary repartition (hash) join with the given
// number of reducers and reports its load profile against the capacity q.
// Unlike Run it never fails on capacity: it reports the violation instead, so
// experiments can show how badly the heavy hitters overload a single reducer.
func HashJoinBaseline(x, y *workload.Relation, numReducers int, q core.Size, countOnly bool) (*BaselineResult, error) {
	if x == nil || y == nil || len(x.Tuples) == 0 || len(y.Tuples) == 0 {
		return nil, ErrEmptyRelation
	}
	if numReducers <= 0 {
		return nil, fmt.Errorf("skewjoin: baseline needs a positive reducer count, got %d", numReducers)
	}
	records := encodeRelations(x, y)
	mapper := mr.MapperFunc(func(record []byte, emit func(mr.Pair)) error {
		side, _, key, payload, err := decodeInput(record)
		if err != nil {
			return err
		}
		emit(mr.Pair{Key: key, Value: encodeLightValue(side, key, payload)})
		return nil
	})
	job := &mr.Job{
		Name:        "hash-join-baseline",
		Mapper:      mapper,
		Reducer:     lightReducer(Config{CountOnly: countOnly}),
		NumReducers: numReducers,
	}
	runRes, err := mr.NewEngine().Run(job, records)
	if err != nil {
		return nil, fmt.Errorf("skewjoin: baseline run: %w", err)
	}
	res := &BaselineResult{NumReducers: numReducers, Counters: runRes.Counters}
	res.CapacityViolated = q > 0 && runRes.Counters.MaxReducerLoad > int64(q)
	for _, rec := range runRes.FlatOutput() {
		if countOnly {
			var n int64
			if _, err := fmt.Sscanf(string(rec), "%d", &n); err != nil {
				return nil, fmt.Errorf("skewjoin: malformed baseline count %q: %w", rec, err)
			}
			res.JoinedCount += n
			continue
		}
		res.JoinedCount++
	}
	return res, nil
}
