// Command loadgen drives a pland fleet with a mixed workload and reports
// latency quantiles, throughput, and loss, gating the run for CI use.
//
// It speaks to one node or a whole ring; with several -targets it
// round-robins traffic and retries transport-class failures on the other
// nodes, so a node draining away mid-run shows up as latency, not as a
// failed run. The churn op is the durability probe: it creates a session,
// mutates it, and keeps reading it back — an acknowledged session that stays
// 404 past -lost-timeout is counted as lost, and -require-zero-lost turns
// any loss into a non-zero exit.
//
// Examples:
//
//	loadgen -targets http://a:8080,http://b:8080 -duration 30s
//	loadgen -targets http://a:8080 -rate 100 -mix plan=8,churn=2 \
//	    -max-p99 250ms -max-error-rate 0.01 -require-zero-lost
//
// The JSON report goes to stdout (or -out); gates violations are listed in
// it and exit the process with status 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/assign"
)

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8080", "comma-separated pland base URLs")
		mix         = flag.String("mix", "plan=6,execute=2,churn=2", "traffic mix as op=weight terms (plan, execute, churn)")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers (ignored when -rate is set)")
		rate        = flag.Float64("rate", 0, "open-loop ops per second (0 = closed loop)")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		capacity    = flag.Int64("capacity", 64, "reducer capacity q of generated instances")
		inputs      = flag.Int("inputs", 12, "inputs per generated instance")
		seed        = flag.Int64("seed", 1, "RNG seed for the generated instances")
		opTimeout   = flag.Duration("op-timeout", 10*time.Second, "per-attempt timeout")
		lostTimeout = flag.Duration("lost-timeout", 3*time.Second, "how long churn re-polls a 404 session before declaring it lost")

		maxP99       = flag.Duration("max-p99", 0, "fail the run when op p99 exceeds this (0 = no gate)")
		maxErrorRate = flag.Float64("max-error-rate", -1, "fail the run when the error fraction exceeds this (negative = no gate)")
		zeroLost     = flag.Bool("require-zero-lost", false, "fail the run when any session is lost")

		out     = flag.String("out", "", "write the JSON report here instead of stdout")
		verbose = flag.Bool("v", false, "log each failed op")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	mixMap, err := parseMix(*mix)
	if err != nil {
		log.Error("bad -mix", "error", err)
		os.Exit(2)
	}
	cfg := loadConfig{
		Targets:         splitTargets(*targets),
		Mix:             mixMap,
		Concurrency:     *concurrency,
		Rate:            *rate,
		Duration:        *duration,
		Capacity:        assign.Size(*capacity),
		Inputs:          *inputs,
		Seed:            *seed,
		OpTimeout:       *opTimeout,
		LostTimeout:     *lostTimeout,
		MaxP99:          *maxP99,
		MaxErrorRate:    *maxErrorRate,
		RequireZeroLost: *zeroLost,
		Log:             log,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Info("load starting", "targets", cfg.Targets, "mix", *mix,
		"duration", cfg.Duration, "rate", cfg.Rate, "concurrency", cfg.Concurrency)
	report, err := runLoad(ctx, cfg)
	if err != nil {
		log.Error("load failed", "error", err)
		os.Exit(2)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Error("encoding report", "error", err)
		os.Exit(2)
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Error("writing report", "error", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(doc)
	}
	log.Info("load finished", "requests", report.Requests, "errors", report.Errors,
		"lost", report.Lost, "p99_ms", fmt.Sprintf("%.1f", report.P99MS),
		"rps", fmt.Sprintf("%.1f", report.Throughput))
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			log.Error("gate violated", "gate", v)
		}
		// Quote the sampled failures' correlation identity so the violation is
		// immediately chaseable: grep the request ID in the fleet's logs, pull
		// the trace from GET /debug/traces/{trace_id}.
		for _, f := range report.FailedOps {
			log.Error("failed op", "op", f.Op, "request_id", f.RequestID,
				"trace_id", f.TraceID, "error", f.Error)
		}
		os.Exit(1)
	}
}

// splitTargets parses the -targets list, dropping empties and trailing
// slashes the same way pland's own -peers flag does.
func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}
