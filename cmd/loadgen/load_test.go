package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubPland serves just enough of the pland API for the generator: v1 plan
// and execute, and the v2 session CRUD cycle churn exercises.
type stubPland struct {
	mu       sync.Mutex
	sessions map[string]bool
	nextID   atomic.Uint64

	plans    atomic.Uint64
	executes atomic.Uint64
	creates  atomic.Uint64

	// dropSessions makes every session GET answer 404, simulating a node
	// that lost acknowledged state.
	dropSessions bool
	// failAll makes every call answer 500.
	failAll bool
}

func (s *stubPland) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.failAll {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{"code": "internal", "message": "stub down"}})
			return
		}
		switch {
		case r.URL.Path == "/v1/plan":
			s.plans.Add(1)
			json.NewEncoder(w).Encode(map[string]any{"reducers": 2, "winner": "stub"})
		case r.URL.Path == "/v1/execute":
			s.executes.Add(1)
			json.NewEncoder(w).Encode(map[string]any{"reducers": 2, "pairs": 1})
		case r.URL.Path == "/v2/sessions" && r.Method == http.MethodPost:
			s.creates.Add(1)
			id := "s-" + strconv.FormatUint(s.nextID.Add(1), 10)
			s.mu.Lock()
			if s.sessions == nil {
				s.sessions = map[string]bool{}
			}
			s.sessions[id] = true
			s.mu.Unlock()
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(map[string]any{"id": id, "inputs": 3})
		case strings.HasPrefix(r.URL.Path, "/v2/sessions/"):
			id := strings.TrimPrefix(r.URL.Path, "/v2/sessions/")
			s.mu.Lock()
			live := s.sessions[id]
			if r.Method == http.MethodDelete {
				delete(s.sessions, id)
			}
			s.mu.Unlock()
			if !live || (s.dropSessions && r.Method == http.MethodGet) {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{"code": "not_found", "message": "no such session"}})
				return
			}
			switch r.Method {
			case http.MethodGet, http.MethodDelete:
				json.NewEncoder(w).Encode(map[string]any{"id": id, "inputs": 3})
			case http.MethodPatch:
				json.NewEncoder(w).Encode(map[string]any{"id": id, "applied": 1})
			}
		default:
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{"code": "not_found", "message": "no route"}})
		}
	})
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("plan=6, execute=2,churn=0")
	if err != nil {
		t.Fatal(err)
	}
	if mix[opPlan] != 6 || mix[opExecute] != 2 || mix[opChurn] != 0 {
		t.Fatalf("mix = %v", mix)
	}
	for _, bad := range []string{"plan", "plan=x", "warmup=3", "plan=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestClosedLoopAllOps(t *testing.T) {
	stub := &stubPland{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	report, err := runLoad(context.Background(), loadConfig{
		Targets:      []string{srv.URL},
		Mix:          map[string]int{opPlan: 2, opExecute: 1, opChurn: 1},
		Concurrency:  4,
		Duration:     300 * time.Millisecond,
		Inputs:       4,
		Capacity:     16,
		Seed:         7,
		MaxErrorRate: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests ran")
	}
	if report.Errors != 0 || len(report.Violations) != 0 {
		t.Fatalf("clean stub produced errors: %+v", report)
	}
	if stub.plans.Load() == 0 || stub.executes.Load() == 0 || stub.creates.Load() == 0 {
		t.Fatalf("mix did not reach all ops: plans=%d executes=%d creates=%d",
			stub.plans.Load(), stub.executes.Load(), stub.creates.Load())
	}
	if report.Throughput <= 0 || report.P99MS <= 0 {
		t.Fatalf("degenerate stats: %+v", report)
	}
}

func TestOpenLoopRate(t *testing.T) {
	stub := &stubPland{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	report, err := runLoad(context.Background(), loadConfig{
		Targets:  []string{srv.URL},
		Mix:      map[string]int{opPlan: 1},
		Rate:     200,
		Duration: 500 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~100 ticks expected; allow wide slack for CI scheduling.
	if report.Requests < 20 {
		t.Fatalf("open loop ran only %d ops at 200/s over 500ms", report.Requests)
	}
}

func TestRotatesAwayFromDeadTarget(t *testing.T) {
	stub := &stubPland{}
	live := httptest.NewServer(stub.handler())
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	report, err := runLoad(context.Background(), loadConfig{
		Targets:     []string{deadURL, live.URL},
		Mix:         map[string]int{opPlan: 1},
		Concurrency: 2,
		Duration:    250 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests ran")
	}
	if report.Errors != 0 {
		t.Fatalf("dead target leaked %d errors through rotation (of %d)", report.Errors, report.Requests)
	}
}

func TestChurnCountsLostSessions(t *testing.T) {
	stub := &stubPland{dropSessions: true}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	report, err := runLoad(context.Background(), loadConfig{
		Targets:         []string{srv.URL},
		Mix:             map[string]int{opChurn: 1},
		Concurrency:     1,
		Duration:        300 * time.Millisecond,
		LostTimeout:     50 * time.Millisecond,
		Seed:            5,
		RequireZeroLost: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Lost == 0 {
		t.Fatal("vanished sessions were not counted as lost")
	}
	if len(report.Violations) == 0 {
		t.Fatal("require-zero-lost did not trip")
	}
}

func TestErrorRateGate(t *testing.T) {
	stub := &stubPland{failAll: true}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	report, err := runLoad(context.Background(), loadConfig{
		Targets:      []string{srv.URL},
		Mix:          map[string]int{opPlan: 1},
		Concurrency:  2,
		Duration:     200 * time.Millisecond,
		Seed:         9,
		MaxErrorRate: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors == 0 {
		t.Fatal("all-500 stub produced no errors")
	}
	violated := false
	for _, v := range report.Violations {
		if strings.Contains(v, "error rate") {
			violated = true
		}
	}
	if !violated {
		t.Fatalf("error-rate gate did not trip: %+v", report.Violations)
	}
}
