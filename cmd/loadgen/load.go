package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

// Operation names of the traffic mix. Each op is one client-visible unit of
// work: a synchronous plan, a synchronous execute, or a full session
// create→mutate→verify→delete cycle.
const (
	opPlan    = "plan"
	opExecute = "execute"
	opChurn   = "churn"
	// opShed is not schedulable: it books open-loop ops that could not start
	// because the in-flight cap was already full — the fleet fell behind the
	// offered rate, and hiding that would let an overloaded run pass.
	opShed = "shed"
)

// loadConfig is everything one load run needs; main fills it from flags and
// the tests fill it directly.
type loadConfig struct {
	// Targets are the pland base URLs traffic is spread over. An op that
	// fails one target with a transport-class error is retried on the others
	// before it counts as an error, which is what lets a run ride through a
	// node draining away mid-test.
	Targets []string
	// Mix maps op name to relative weight; zero-weight ops never run.
	Mix map[string]int
	// Concurrency is the closed-loop worker count, used when Rate is zero.
	Concurrency int
	// Rate switches to open-loop mode: ops start at this fixed rate per
	// second regardless of completions, as a latency-hiding-free probe.
	Rate float64
	// Duration bounds the run.
	Duration time.Duration
	// Capacity and Inputs shape the generated instances.
	Capacity assign.Size
	Inputs   int
	// Seed makes the generated instances reproducible.
	Seed int64
	// OpTimeout bounds each op attempt.
	OpTimeout time.Duration
	// LostTimeout is how long a churn op keeps re-asking for a session that
	// answered 404 before declaring it lost. It must cover the handoff window
	// of a draining node: a session can be legitimately unreachable between
	// the owner closing its listener and the successor installing it.
	LostTimeout time.Duration

	// Gates; violations make the run exit non-zero.
	MaxP99          time.Duration // 0 disables
	MaxErrorRate    float64       // fraction of ops; negative disables
	RequireZeroLost bool

	Log *slog.Logger
}

// opCounters aggregates one op's outcomes.
type opCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	lost     atomic.Uint64
}

// OpStats is the per-op slice of the report.
type OpStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Lost     uint64 `json:"lost,omitempty"`
}

// loadReport is the JSON document a run emits.
type loadReport struct {
	Targets    []string `json:"targets"`
	DurationS  float64  `json:"duration_s"`
	Requests   uint64   `json:"requests"`
	Errors     uint64   `json:"errors"`
	Lost       uint64   `json:"lost"`
	ErrorRate  float64  `json:"error_rate"`
	Throughput float64  `json:"throughput_rps"`
	// Latency quantiles in milliseconds, over successful and failed ops
	// alike (an error that took 2s to surface is still 2s of client pain).
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	// FleetCacheHits counts plan results served from another node's solve.
	FleetCacheHits uint64             `json:"fleet_cache_hits"`
	ByOp           map[string]OpStats `json:"by_op"`
	// FailedOps samples the first few failed ops with their correlation
	// identity, so a gate violation comes with request and trace IDs that can
	// be looked up in the fleet's logs and /debug/traces.
	FailedOps []failedOp `json:"failed_ops,omitempty"`
	// Violations lists every failed gate; empty means the run passed.
	Violations []string `json:"violations"`
}

// failedOp is one sampled failure: the op, its error, the request ID loadgen
// minted for the op (every server log line for it carries the same ID), and
// the server's trace ID when the failure arrived as an HTTP response.
type failedOp struct {
	Op        string `json:"op"`
	Error     string `json:"error"`
	RequestID string `json:"request_id"`
	TraceID   string `json:"trace_id,omitempty"`
}

// maxFailedOps caps the sample: enough to debug with, small enough that an
// all-errors run does not bloat the report.
const maxFailedOps = 10

// generator is the shared state of one load run.
type generator struct {
	cfg     loadConfig
	clients []*plandclient.Client
	ops     []string // weighted op lottery, Mix expanded
	hist    *obs.Histogram

	cursor    atomic.Uint64 // round-robin target index
	fleetHits atomic.Uint64
	perOp     map[string]*opCounters

	failMu sync.Mutex
	failed []failedOp // first maxFailedOps failures, for the report
}

// parseMix turns "plan=6,execute=2,churn=2" into the Mix map.
func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix term %q: want op=weight", part)
		}
		switch name {
		case opPlan, opExecute, opChurn:
		default:
			return nil, fmt.Errorf("mix term %q: unknown op (plan, execute, churn)", part)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix term %q: weight must be a non-negative integer", part)
		}
		mix[name] += w
	}
	return mix, nil
}

// runLoad drives the configured traffic and returns the report. The error
// return is for unusable configuration only — request failures are data, not
// errors, and land in the report.
func runLoad(ctx context.Context, cfg loadConfig) (*loadReport, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("no targets")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("duration must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.Inputs <= 0 {
		cfg.Inputs = 12
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	if cfg.LostTimeout <= 0 {
		cfg.LostTimeout = 3 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	g := &generator{
		cfg: cfg,
		// A private registry: runs (and tests) never collide on metric names.
		hist: obs.NewRegistry().Histogram("loadgen_op_seconds",
			"End-to-end op latency.", obs.ExpBuckets(50e-6, 2, 20)),
		perOp: map[string]*opCounters{
			opPlan: {}, opExecute: {}, opChurn: {}, opShed: {},
		},
	}
	for _, t := range cfg.Targets {
		g.clients = append(g.clients, plandclient.New(t))
	}
	for _, op := range []string{opPlan, opExecute, opChurn} { // deterministic order
		for i := 0; i < cfg.Mix[op]; i++ {
			g.ops = append(g.ops, op)
		}
	}
	if len(g.ops) == 0 {
		return nil, errors.New("traffic mix is empty")
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	if cfg.Rate > 0 {
		g.openLoop(runCtx)
	} else {
		g.closedLoop(runCtx)
	}
	return g.report(time.Since(start)), nil
}

// closedLoop runs Concurrency workers back to back: each starts its next op
// as soon as the previous one finishes.
func (g *generator) closedLoop(ctx context.Context) {
	var wg sync.WaitGroup
	seeds := rand.New(rand.NewSource(g.cfg.Seed))
	for w := 0; w < g.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				g.step(ctx, rng)
			}
		}(seeds.Int63())
	}
	wg.Wait()
}

// openLoop starts ops on a fixed clock regardless of how long they take, so
// a slow fleet accumulates in-flight requests instead of quietly throttling
// the probe. In-flight is capped; an op that cannot start counts as an
// error, which is the honest reading of an overloaded fleet.
func (g *generator) openLoop(ctx context.Context) {
	interval := time.Duration(float64(time.Second) / g.cfg.Rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sem := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	// Worker seeds are drawn from one dispatcher-owned rng: sequential seeds
	// would correlate the workers' first draws and skew the op mix.
	seeds := rand.New(rand.NewSource(g.cfg.Seed))
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				g.perOp[opShed].requests.Add(1)
				g.perOp[opShed].errors.Add(1)
				continue
			}
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				defer func() { <-sem }()
				g.step(ctx, rand.New(rand.NewSource(seed)))
			}(seeds.Int63())
		}
	}
}

// step runs one op end to end and records it. Every op gets its own minted
// request ID: the client sends it as X-Request-ID (and it seeds the
// traceparent the SDK injects), so a failure here names the exact server log
// lines and trace that produced it.
func (g *generator) step(ctx context.Context, rng *rand.Rand) {
	op := g.ops[rng.Intn(len(g.ops))]
	c := g.perOp[op]
	c.requests.Add(1)
	rid := obs.NewRequestID()
	ctx = obs.WithRequestID(ctx, rid)
	start := time.Now()
	var err error
	var lost bool
	switch op {
	case opPlan:
		err = g.doPlan(ctx, rng)
	case opExecute:
		err = g.doExecute(ctx, rng)
	case opChurn:
		lost, err = g.doChurn(ctx, rng)
	}
	g.hist.ObserveSince(start)
	if ctx.Err() != nil && err != nil {
		// The run ended mid-op; a deadline-cut request is not a fleet failure.
		c.requests.Add(^uint64(0))
		return
	}
	if err != nil {
		c.errors.Add(1)
		g.recordFailure(op, rid, err)
		g.cfg.Log.Debug("op failed", "op", op, "request_id", rid, "error", err)
	}
	if lost {
		c.lost.Add(1)
		g.cfg.Log.Warn("session lost", "request_id", rid, "error", err)
	}
}

// recordFailure samples the op into the report's failed-op list, preferring
// the server's own correlation identity (the APIError's request and trace
// IDs) over the client-minted request ID when a response came back.
func (g *generator) recordFailure(op, rid string, err error) {
	f := failedOp{Op: op, Error: err.Error(), RequestID: rid}
	var aerr *plandclient.APIError
	if errors.As(err, &aerr) {
		if aerr.RequestID != "" {
			f.RequestID = aerr.RequestID
		}
		f.TraceID = aerr.TraceID
	}
	g.failMu.Lock()
	if len(g.failed) < maxFailedOps {
		g.failed = append(g.failed, f)
	}
	g.failMu.Unlock()
}

// retryable reports whether an error is worth re-trying on a different
// target: transport failures and 5xx-class server states, i.e. exactly the
// failures a dying or draining node emits. 4xx responses are real answers.
func retryable(err error) bool {
	var aerr *plandclient.APIError
	if !errors.As(err, &aerr) {
		return false
	}
	return aerr.StatusCode == 0 || aerr.StatusCode >= 500
}

// onFleet runs fn against a target, rotating to the other targets when the
// failure looks like the node's problem rather than the request's. The base
// target comes from the shared round-robin cursor, but the rotation itself
// walks the target list from there — drawing each retry from the shared
// cursor would let interleaved workers hand one op the same dead node three
// times, failing it without ever trying a live one.
func (g *generator) onFleet(ctx context.Context, fn func(ctx context.Context, c *plandclient.Client) error) error {
	var err error
	base := g.cursor.Add(1)
	for i := 0; i < len(g.clients); i++ {
		octx, cancel := context.WithTimeout(ctx, g.cfg.OpTimeout)
		err = fn(octx, g.clients[(base+uint64(i))%uint64(len(g.clients))])
		cancel()
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// sizes draws a random instance of n inputs in [1, capacity/2].
func (g *generator) sizes(rng *rand.Rand, n int) []assign.Size {
	out := make([]assign.Size, n)
	half := int64(g.cfg.Capacity) / 2
	if half < 1 {
		half = 1
	}
	for i := range out {
		out[i] = assign.Size(1 + rng.Int63n(half))
	}
	return out
}

func (g *generator) doPlan(ctx context.Context, rng *rand.Rand) error {
	req := plandclient.PlanRequest{
		Problem:  "A2A",
		Capacity: g.cfg.Capacity,
		Sizes:    g.sizes(rng, g.cfg.Inputs),
	}
	return g.onFleet(ctx, func(ctx context.Context, c *plandclient.Client) error {
		res, err := c.Plan(ctx, req)
		if err != nil {
			return err
		}
		if res.FleetCacheHit {
			g.fleetHits.Add(1)
		}
		return nil
	})
}

func (g *generator) doExecute(ctx context.Context, rng *rand.Rand) error {
	n := g.cfg.Inputs
	if n > 32 {
		n = 32 // execute materializes payloads; keep them modest
	}
	inputs := make([]string, n)
	for i, sz := range g.sizes(rng, n) {
		inputs[i] = strings.Repeat("x", int(sz))
	}
	req := plandclient.ExecuteRequest{
		Problem:  "A2A",
		Capacity: g.cfg.Capacity,
		Inputs:   inputs,
	}
	return g.onFleet(ctx, func(ctx context.Context, c *plandclient.Client) error {
		_, err := c.Execute(ctx, req)
		return err
	})
}

// doChurn cycles one session: create, mutate, read back, delete. The read
// back is the loss detector — after a create was acknowledged, a 404 that
// persists past LostTimeout means a node took acknowledged state down with
// it, which is the one thing a clustered pland must never do.
func (g *generator) doChurn(ctx context.Context, rng *rand.Rand) (lost bool, err error) {
	var sess *plandclient.Session
	err = g.onFleet(ctx, func(ctx context.Context, c *plandclient.Client) error {
		var err error
		sess, err = c.CreateSession(ctx, plandclient.SessionCreateRequest{
			Capacity: g.cfg.Capacity,
			Sizes:    g.sizes(rng, g.cfg.Inputs),
		})
		return err
	})
	if err != nil {
		return false, err
	}
	err = g.onFleet(ctx, func(ctx context.Context, c *plandclient.Client) error {
		_, err := c.UpdateSession(ctx, sess.ID, plandclient.AddDelta(assign.Size(1+rng.Int63n(int64(g.cfg.Capacity)/2+1))))
		return err
	})
	if err != nil && !retryable(err) && !plandclient.IsCode(err, plandclient.CodeNotFound) {
		return false, err
	}
	// Verify the session is still reachable, riding out a handoff window.
	deadline := time.Now().Add(g.cfg.LostTimeout)
	wait := 25 * time.Millisecond
	for {
		err = g.onFleet(ctx, func(ctx context.Context, c *plandclient.Client) error {
			_, err := c.GetSession(ctx, sess.ID)
			return err
		})
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return false, err
		}
		if !plandclient.IsCode(err, plandclient.CodeNotFound) && !retryable(err) {
			return false, err
		}
		if time.Now().After(deadline) {
			return plandclient.IsCode(err, plandclient.CodeNotFound), err
		}
		time.Sleep(wait)
		if wait < 400*time.Millisecond {
			wait *= 2
		}
	}
	// Best-effort delete; a failure here is an error but not a loss.
	return false, g.onFleet(ctx, func(ctx context.Context, c *plandclient.Client) error {
		_, err := c.DeleteSession(ctx, sess.ID)
		return err
	})
}

// report folds the counters into the wire document and evaluates the gates.
func (g *generator) report(elapsed time.Duration) *loadReport {
	r := &loadReport{
		Targets:        g.cfg.Targets,
		DurationS:      elapsed.Seconds(),
		FleetCacheHits: g.fleetHits.Load(),
		ByOp:           map[string]OpStats{},
		P50MS:          g.hist.Quantile(0.50) * 1000,
		P90MS:          g.hist.Quantile(0.90) * 1000,
		P99MS:          g.hist.Quantile(0.99) * 1000,
		P999MS:         g.hist.Quantile(0.999) * 1000,
		Violations:     []string{},
	}
	names := make([]string, 0, len(g.perOp))
	for name := range g.perOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := g.perOp[name]
		st := OpStats{Requests: c.requests.Load(), Errors: c.errors.Load(), Lost: c.lost.Load()}
		if st.Requests == 0 {
			continue
		}
		r.ByOp[name] = st
		r.Requests += st.Requests
		r.Errors += st.Errors
		r.Lost += st.Lost
	}
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	if r.DurationS > 0 {
		r.Throughput = float64(r.Requests) / r.DurationS
	}
	if g.cfg.MaxP99 > 0 && r.P99MS > float64(g.cfg.MaxP99.Milliseconds()) {
		r.Violations = append(r.Violations,
			fmt.Sprintf("p99 %.1fms exceeds gate %dms", r.P99MS, g.cfg.MaxP99.Milliseconds()))
	}
	if g.cfg.MaxErrorRate >= 0 && r.ErrorRate > g.cfg.MaxErrorRate {
		r.Violations = append(r.Violations,
			fmt.Sprintf("error rate %.4f exceeds gate %.4f (%d/%d)", r.ErrorRate, g.cfg.MaxErrorRate, r.Errors, r.Requests))
	}
	if g.cfg.RequireZeroLost && r.Lost > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d sessions lost; zero tolerated", r.Lost))
	}
	g.failMu.Lock()
	r.FailedOps = append([]failedOp(nil), g.failed...)
	g.failMu.Unlock()
	return r
}
