package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

// newTracedCluster boots n in-process nodes like newTestCluster, but with the
// flight recorder keeping every trace (sample rate 1) and each node knowing
// its own advertised URL before newServer runs — the recorder stamps it as
// the Node of every record, which is what the cross-node assertions read.
// The indirection through a late-bound handler breaks the listener/URL cycle.
func newTracedCluster(t *testing.T, n int) ([]*server, []*httptest.Server) {
	t.Helper()
	servers := make([]*server, n)
	httpSrvs := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		i := i
		httpSrvs[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].ServeHTTP(w, r)
		}))
		urls[i] = httpSrvs[i].URL
	}
	for i := range servers {
		servers[i] = newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{
			Self:            urls[i],
			Peers:           urls,
			TraceSampleRate: 1,
		})
	}
	t.Cleanup(func() {
		for i := range servers {
			httpSrvs[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			servers[i].Close(ctx)
			cancel()
		}
	})
	for i, s := range servers {
		cl, err := newCluster(s.cfg, s.log)
		if err != nil {
			t.Fatalf("newCluster(%d): %v", i, err)
		}
		s.cluster = cl
	}
	return servers, httpSrvs
}

// traceRecords polls a node's recorder for a trace: the forwarding node's
// root record commits as its handler returns, which can race the client
// seeing the response by a hair.
func traceRecords(t *testing.T, s *server, traceID string) []obs.TraceRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if recs := s.recorder.Get(traceID); len(recs) > 0 {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never retained trace %s", s.cfg.Self, traceID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// findSpan walks a snapshot tree for a span by name.
func findSpan(snap obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	if snap.Name == name {
		return &snap
	}
	for _, c := range snap.Children {
		if found := findSpan(c, name); found != nil {
			return found
		}
	}
	return nil
}

// TestClusterTracePropagation is the tentpole's cross-node assertion: a
// forwarded session create yields ONE trace ID whose span records exist on
// both the entry node (with a "forward" child naming the peer) and the owner
// (annotated with the forwarder), and GET /debug/traces/{id} on either node
// merges the whole forest.
func TestClusterTracePropagation(t *testing.T) {
	servers, httpSrvs := newTracedCluster(t, 2)
	ctx := context.Background()
	c0 := plandclient.New(httpSrvs[0].URL)

	// Create sessions through node 0 until one's ring owner is node 1, i.e.
	// the create was forwarded. IDs are random, so a handful of tries suffices.
	var traceID, owner string
	for try := 0; try < 64; try++ {
		sess, err := c0.CreateSession(ctx, plandclient.SessionCreateRequest{
			Capacity: 10, Sizes: []assign.Size{3, 4, 5},
		})
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		if sess.TraceID == "" {
			t.Fatal("create response carried no trace ID")
		}
		if sess.Node != httpSrvs[0].URL {
			traceID, owner = sess.TraceID, sess.Node
			break
		}
	}
	if traceID == "" {
		t.Fatal("64 creates all landed on node 0; forwarding never exercised")
	}
	if owner != httpSrvs[1].URL {
		t.Fatalf("owner = %s, want node 1 (%s)", owner, httpSrvs[1].URL)
	}

	// Node 0 retained the entry hop: route /v2/sessions with a forward child
	// pointing at the owner.
	recs0 := traceRecords(t, servers[0], traceID)
	var entry *obs.TraceRecord
	for i := range recs0 {
		if recs0[i].Route == "/v2/sessions" {
			entry = &recs0[i]
		}
	}
	if entry == nil {
		t.Fatalf("node 0 has no /v2/sessions record for trace %s: %+v", traceID, recs0)
	}
	fwd := findSpan(entry.Root, "forward")
	if fwd == nil {
		t.Fatalf("entry record has no forward span: %+v", entry.Root)
	}
	peerAttr := ""
	for _, a := range fwd.Attrs {
		if a.Key == "peer" {
			peerAttr = a.Value
		}
	}
	if peerAttr != owner {
		t.Fatalf("forward span peer = %q, want %q", peerAttr, owner)
	}

	// Node 1 retained the owner's half under the SAME trace ID, annotated
	// with who forwarded it, and its root joined node 0's trace remotely.
	recs1 := traceRecords(t, servers[1], traceID)
	ownerRec := recs1[0]
	if ownerRec.Node != httpSrvs[1].URL {
		t.Fatalf("owner record node = %q, want %q", ownerRec.Node, httpSrvs[1].URL)
	}
	if !ownerRec.Root.Remote {
		t.Error("owner root span did not join a remote parent")
	}
	from := ""
	for _, a := range ownerRec.Root.Attrs {
		if a.Key == "forwarded_from" {
			from = a.Value
		}
	}
	if from != httpSrvs[0].URL {
		t.Fatalf("owner root forwarded_from = %q, want %q", from, httpSrvs[0].URL)
	}

	// GET /debug/traces/{id} on node 0 fans out and returns both halves.
	resp, err := http.Get(httpSrvs[0].URL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id} = %d", resp.StatusCode)
	}
	var tr traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	for _, rec := range tr.Records {
		if rec.TraceID != traceID {
			t.Fatalf("merged record has trace %s, want %s", rec.TraceID, traceID)
		}
		nodes[rec.Node] = true
	}
	if !nodes[httpSrvs[0].URL] || !nodes[httpSrvs[1].URL] {
		t.Fatalf("merged trace spans nodes %v, want both %s and %s", nodes, httpSrvs[0].URL, httpSrvs[1].URL)
	}

	// The Chrome export renders one process lane per node.
	resp, err = http.Get(httpSrvs[0].URL + "/debug/traces/" + traceID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "M" {
			lanes[ev.PID] = true
		}
	}
	if len(lanes) != 2 {
		t.Fatalf("chrome export has %d process lanes, want 2", len(lanes))
	}
}

// TestTraceHeaderMatchesRecorder: the traceparent a response carries names
// exactly the trace the flight recorder retained, and /debug/traces lists it.
func TestTraceHeaderMatchesRecorder(t *testing.T) {
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{TraceSampleRate: 1})
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})

	resp, _ := postPlan(t, srv, `{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	tc, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatalf("response traceparent %q did not parse", resp.Header.Get(obs.TraceparentHeader))
	}

	recs := traceRecords(t, s, tc.TraceID)
	if recs[0].Route != "/v1/plan" {
		t.Fatalf("retained route = %q, want /v1/plan", recs[0].Route)
	}
	if findSpan(recs[0].Root, "canonicalize") == nil {
		t.Errorf("plan trace has no canonicalize stage: %+v", recs[0].Root)
	}

	listResp, err := http.Get(srv.URL + "/debug/traces?route=/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list tracesResponse
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.TraceID == tc.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/traces?route=/v1/plan does not list trace %s", tc.TraceID)
	}
}

// TestMetricsLabelCardinality is the guard against unbounded label values
// leaking into the registry (e.g. a request or trace ID used as a label):
// after real traffic, no metric family may exceed a fixed series budget.
// The `le` bucket label is dropped before counting — it is structurally
// bounded by the histogram's bucket layout, and with it a histogram vec's
// series count is routes × buckets, which would drown the signal. Bounded
// vocabularies (routes, statuses, outcomes) stay far under the budget; one
// unbounded label blows past it immediately.
func TestMetricsLabelCardinality(t *testing.T) {
	srv := newTestServer(t)
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"problem":"A2A","capacity":10,"sizes":[%d,3,2]}`, i+1)
		if resp, _ := postPlan(t, srv, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	const budget = 128
	series := map[string]map[string]bool{}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, _, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		family, labels, _ := strings.Cut(metric, "{")
		if start := strings.Index(labels, `le="`); start >= 0 {
			end := strings.Index(labels[start+4:], `"`)
			labels = labels[:start] + labels[start+4+end+1:]
		}
		if series[family] == nil {
			series[family] = map[string]bool{}
		}
		series[family][family+"{"+labels] = true
	}
	for family, set := range series {
		if len(set) > budget {
			t.Errorf("family %s has %d series, budget is %d — an unbounded label leaked in", family, len(set), budget)
		}
	}
}
