package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

// newTestServerWithJobs builds a server whose job manager the test can also
// reach directly (to inject blockers deterministically), plus a plandclient
// on it.
func newTestServerWithJobs(t *testing.T, cfg serverConfig) (*server, *plandclient.Client) {
	t.Helper()
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, plandclient.New(srv.URL)
}

// TestJobLifecyclePlan drives submit→poll→result end to end through the SDK
// client: the job must pass through a terminal succeeded state and carry a
// valid, decodable plan.
func TestJobLifecyclePlan(t *testing.T) {
	_, c := newTestServerWithJobs(t, serverConfig{})
	ctx := context.Background()
	job, err := c.SubmitPlan(ctx, plandclient.PlanRequest{
		Problem: "A2A", Capacity: 10, Sizes: []assign.Size{3, 3, 2, 2, 4, 1}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Type != "plan" || job.Terminal() {
		t.Fatalf("submitted job = %+v", job)
	}
	final, err := c.WaitJob(ctx, job.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != plandclient.StateSucceeded {
		t.Fatalf("final state = %s (err %v)", final.State, final.Err())
	}
	if final.StartedAt == nil || final.FinishedAt == nil || final.ExpiresAt == nil {
		t.Errorf("missing lifecycle stamps: %+v", final)
	}
	res, err := final.PlanResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema == nil || res.Reducers == 0 {
		t.Fatalf("result = %+v", res)
	}
	if err := res.Schema.ValidateA2A(assign.MustNewInputSet([]assign.Size{3, 3, 2, 2, 4, 1})); err != nil {
		t.Errorf("async-planned schema invalid: %v", err)
	}
}

// TestJobLifecycleExecute runs an execute job asynchronously and checks the
// audited result round-trips.
func TestJobLifecycleExecute(t *testing.T) {
	_, c := newTestServerWithJobs(t, serverConfig{})
	res, err := c.ExecuteAsync(context.Background(), plandclient.ExecuteRequest{
		Problem: "A2A", Capacity: 10, Inputs: []string{"aaa", "bbb", "cc", "d"}, ReturnPairs: true,
	}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 6 || !res.Audited || len(res.PairIDs) != 6 {
		t.Errorf("async execute result = %+v", res)
	}
}

// TestJobSubmitValidation: malformed jobs fail synchronously at submit with
// the envelope, never entering the queue.
func TestJobSubmitValidation(t *testing.T) {
	s, c := newTestServerWithJobs(t, serverConfig{})
	ctx := context.Background()
	cases := []struct {
		name string
		req  plandclient.PlanRequest
	}{
		{"no sizes", plandclient.PlanRequest{Problem: "A2A", Capacity: 10}},
		{"bad capacity", plandclient.PlanRequest{Problem: "A2A", Sizes: []assign.Size{1}}},
		{"bad problem", plandclient.PlanRequest{Problem: "nope", Capacity: 10, Sizes: []assign.Size{1}}},
	}
	for _, tc := range cases {
		if _, err := c.SubmitPlan(ctx, tc.req); !plandclient.IsCode(err, plandclient.CodeBadRequest) {
			t.Errorf("%s: err = %v, want bad_request", tc.name, err)
		}
	}
	if st := s.jobs.Stats(); st.Submitted != 0 {
		t.Errorf("invalid jobs were enqueued: %+v", st)
	}
}

// blockWorker occupies n of the manager's workers until the returned release
// is called (or the server shuts down).
func blockWorker(t *testing.T, m *jobs.Manager, n int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		_, err := m.Submit("blocker", func(ctx context.Context) (any, error) {
			started <- struct{}{}
			select {
			case <-ch:
			case <-ctx.Done():
			}
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("blocker never started")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// TestJobCancelQueued: with the single worker occupied, a submitted job
// stays queued; DELETE cancels it immediately and the worker never runs it.
func TestJobCancelQueued(t *testing.T) {
	s, c := newTestServerWithJobs(t, serverConfig{JobWorkers: 1, QueueDepth: 8})
	release := blockWorker(t, s.jobs, 1)
	defer release()
	ctx := context.Background()
	job, err := c.SubmitPlan(ctx, plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: []assign.Size{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CancelJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != plandclient.StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", got.State)
	}
	if !plandclient.IsCode(got.Err(), plandclient.CodeCanceled) {
		t.Errorf("canceled job error = %v", got.Err())
	}
	release()
	// The worker must skip it: the job stays canceled with no result.
	time.Sleep(20 * time.Millisecond)
	again, err := c.GetJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != plandclient.StateCanceled || len(again.Result) != 0 {
		t.Errorf("canceled job was still run: %+v", again)
	}
	// Canceling a terminal job is a conflict.
	if _, err := c.CancelJob(ctx, job.ID); !plandclient.IsCode(err, plandclient.CodeConflict) {
		t.Errorf("second cancel err = %v, want conflict", err)
	}
}

// TestJobCancelRunningReportsCanceledCode: canceling a RUNNING job must
// surface the "canceled" envelope code, even though the aborted solver
// inside surfaces its context error as a plan_timeout-shaped apiError.
func TestJobCancelRunningReportsCanceledCode(t *testing.T) {
	s, c := newTestServerWithJobs(t, serverConfig{JobWorkers: 1})
	started := make(chan struct{})
	snap, err := s.jobs.Submit("plan", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, planError(ctx.Err()) // exactly what runPlan surfaces on abort
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx := context.Background()
	if _, err := c.CancelJob(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, snap.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != plandclient.StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if !plandclient.IsCode(final.Err(), plandclient.CodeCanceled) {
		t.Errorf("running-cancel error = %v, want code canceled (not the solver's abort shape)", final.Err())
	}
}

// TestJobBackpressure429: one busy worker + depth-1 queue → the second
// waiting submit is refused with 429/queue_full.
func TestJobBackpressure429(t *testing.T) {
	s, c := newTestServerWithJobs(t, serverConfig{JobWorkers: 1, QueueDepth: 1})
	release := blockWorker(t, s.jobs, 1)
	defer release()
	ctx := context.Background()
	req := plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: []assign.Size{1, 1}}
	if _, err := c.SubmitPlan(ctx, req); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	_, err := c.SubmitPlan(ctx, req)
	if !plandclient.IsCode(err, plandclient.CodeQueueFull) {
		t.Fatalf("overflow submit err = %v, want queue_full", err)
	}
	var ae *plandclient.APIError
	if plandclient.IsCode(err, plandclient.CodeQueueFull) {
		ae = err.(*plandclient.APIError)
		if ae.StatusCode != http.StatusTooManyRequests {
			t.Errorf("status = %d, want 429", ae.StatusCode)
		}
	}
}

// TestJobResultTTLExpiry: a finished job's result disappears (404) after
// the retention TTL.
func TestJobResultTTLExpiry(t *testing.T) {
	_, c := newTestServerWithJobs(t, serverConfig{ResultTTL: 40 * time.Millisecond})
	ctx := context.Background()
	job, err := c.SubmitPlan(ctx, plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: []assign.Size{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, job.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.GetJob(ctx, job.ID)
		if plandclient.IsCode(err, plandclient.CodeNotFound) {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("job result never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobEndpointsMethodAndPath: wrong methods and unknown IDs keep the
// envelope contract.
func TestJobEndpointsMethodAndPath(t *testing.T) {
	_, c := newTestServerWithJobs(t, serverConfig{})
	ctx := context.Background()
	if _, err := c.GetJob(ctx, "doesnotexist"); !plandclient.IsCode(err, plandclient.CodeNotFound) {
		t.Errorf("unknown job err = %v, want not_found", err)
	}
	if _, err := c.CancelJob(ctx, "doesnotexist"); !plandclient.IsCode(err, plandclient.CodeNotFound) {
		t.Errorf("cancel unknown job err = %v, want not_found", err)
	}
}

// TestJobsConcurrentHammer hammers the HTTP surface with concurrent
// submits, polls, and cancels; run under -race in CI.
func TestJobsConcurrentHammer(t *testing.T) {
	s, c := newTestServerWithJobs(t, serverConfig{JobWorkers: 4, QueueDepth: 512})
	ctx := context.Background()
	const goroutines = 6
	const perG = 15
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Vary the instance so solves are not all cache hits.
				sizes := []assign.Size{1, 2, 3, assign.Size(1 + (g+i)%5)}
				job, err := c.SubmitPlan(ctx, plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: sizes})
				if err != nil {
					if plandclient.IsCode(err, plandclient.CodeQueueFull) {
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
				switch i % 3 {
				case 0:
					if _, err := c.WaitJob(ctx, job.ID, time.Millisecond); err != nil {
						t.Errorf("wait: %v", err)
					}
				case 1:
					c.CancelJob(ctx, job.ID)
				default:
					c.GetJob(ctx, job.ID)
				}
			}
		}(g)
	}
	wg.Wait()
	// Every accepted job must drain to a terminal state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.jobs.Stats()
		if st.Succeeded+st.Failed+st.Canceled == st.Submitted {
			if st.Failed != 0 {
				t.Errorf("hammer produced %d failed jobs", st.Failed)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never drained: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShutdownFailsJobsWithReason: server Close (the SIGTERM path) marks
// still-queued jobs failed with a shutdown reason; they are not dropped.
func TestShutdownFailsJobsWithReason(t *testing.T) {
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{JobWorkers: 1, QueueDepth: 8})
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := plandclient.New(srv.URL)
	release := blockWorker(t, s.jobs, 1)
	defer release()
	job, err := c.SubmitPlan(context.Background(), plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: []assign.Size{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := c.GetJob(context.Background(), job.ID)
	if err != nil {
		t.Fatalf("job dropped by shutdown: %v", err)
	}
	if got.State != plandclient.StateFailed || !plandclient.IsCode(got.Err(), plandclient.CodeShuttingDown) {
		t.Errorf("after shutdown: state=%s err=%v, want failed/shutting_down", got.State, got.Err())
	}
	// New submits are refused while shut down.
	if _, err := c.SubmitPlan(context.Background(), plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: []assign.Size{1, 1}}); !plandclient.IsCode(err, plandclient.CodeShuttingDown) {
		t.Errorf("submit after shutdown err = %v, want shutting_down", err)
	}
}
