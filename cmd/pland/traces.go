package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// tracesResponse is the JSON answer of GET /debug/traces.
type tracesResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
	Stats  obs.RecorderStats  `json:"stats"`
}

// handleTraces serves GET /debug/traces: summaries of retained traces on
// this node, filterable by ?route=, ?status=error, ?min_ms=, ?limit=.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, methodNotAllowed("GET"))
		return
	}
	q := r.URL.Query()
	f := obs.TraceFilter{Route: q.Get("route")}
	if q.Get("status") == "error" {
		f.ErrorsOnly = true
	}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeAPIError(w, badRequestf("min_ms must be a non-negative integer, got %q", v))
			return
		}
		f.MinDuration = time.Duration(ms) * time.Millisecond
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeAPIError(w, badRequestf("limit must be a positive integer, got %q", v))
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Traces: s.recorder.List(f),
		Stats:  s.recorder.Stats(),
	})
}

// traceResponse is the JSON answer of GET /debug/traces/{id}: a forest,
// because one distributed trace leaves separate root records on each node it
// touched (and a request plus the job it enqueued are separate local roots).
type traceResponse struct {
	TraceID string            `json:"trace_id"`
	Records []obs.TraceRecord `json:"records"`
}

// handleTrace serves GET /debug/traces/{id}. In a fleet it fans the lookup
// out to every peer (the forwarding node and the owner each retained their
// half of the trace) and merges, unless ?local=1 stops the recursion.
// ?format=chrome renders Chrome trace-event JSON for Perfetto.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, methodNotAllowed("GET"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		writeAPIError(w, notFound("no such trace"))
		return
	}
	records := s.recorder.Get(id)
	if s.cluster != nil && r.URL.Query().Get("local") != "1" {
		records = append(records, s.cluster.fetchPeerTraces(r.Context(), id)...)
	}
	if len(records) == 0 {
		writeAPIError(w, notFound(fmt.Sprintf("trace %s not retained on any reachable node", id)))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		writeChromeTrace(w, records)
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{TraceID: id, Records: records})
}

// fetchPeerTraces collects the peers' retained records of one trace. Failures
// are ignored — a debug read must not amplify into fleet noise — and each
// probe is bounded so one dead peer cannot stall the response.
func (c *cluster) fetchPeerTraces(ctx context.Context, id string) []obs.TraceRecord {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var (
		mu  sync.Mutex
		out []obs.TraceRecord
		wg  sync.WaitGroup
	)
	for peer := range c.clients {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			u := peer + "/debug/traces/" + url.PathEscape(id) + "?local=1"
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
			if err != nil {
				return
			}
			req.Header.Set(requestIDHeader, obs.RequestID(ctx))
			resp, err := c.proxy.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				return
			}
			var tr traceResponse
			if err := json.NewDecoder(io.LimitReader(resp.Body, c.maxBody)).Decode(&tr); err != nil {
				return
			}
			mu.Lock()
			out = append(out, tr.Records...)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	return out
}

// chromeEvent is one Chrome trace-event (the JSON Array Format Perfetto and
// chrome://tracing load directly). "X" is a complete event with ts/dur in
// microseconds; "M" is process metadata naming each node's lane.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts,omitempty"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// writeChromeTrace renders the records as Chrome trace-event JSON: one
// process lane per node, one thread lane per record, spans as complete
// events.
func writeChromeTrace(w http.ResponseWriter, records []obs.TraceRecord) {
	pids := make(map[string]int)
	var events []chromeEvent
	for i, rec := range records {
		node := rec.Node
		if node == "" {
			node = "pland"
		}
		pid, ok := pids[node]
		if !ok {
			pid = len(pids) + 1
			pids[node] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid, TID: 0,
				Args: map[string]any{"name": node},
			})
		}
		events = appendChromeSpans(events, rec.Root, pid, i, rec.RequestID)
	}
	writeJSON(w, http.StatusOK, map[string]any{"traceEvents": events})
}

func appendChromeSpans(events []chromeEvent, snap obs.SpanSnapshot, pid, tid int, reqID string) []chromeEvent {
	args := map[string]any{"span_id": snap.SpanID}
	if reqID != "" {
		args["request_id"] = reqID
	}
	for _, a := range snap.Attrs {
		args[a.Key] = a.Value
	}
	if snap.Error != "" {
		args["error"] = snap.Error
	}
	dur := snap.DurationUS
	if dur <= 0 {
		dur = 1 // zero-length events vanish in the viewer
	}
	events = append(events, chromeEvent{
		Name:  snap.Name,
		Phase: "X",
		TS:    snap.Start.UnixMicro(),
		Dur:   dur,
		PID:   pid,
		TID:   tid,
		Args:  args,
	})
	for _, c := range snap.Children {
		events = appendChromeSpans(events, c, pid, tid, "")
	}
	return events
}
