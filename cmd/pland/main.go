// Command pland serves mapping-schema planning and execution over HTTP. It
// fronts the pkg/assign SDK — the paper's constructive algorithms raced
// against alternative packing policies, the greedy baseline, and bounded
// exact search, behind a canonicalization cache — with a synchronous v1 API
// and an asynchronous v2 job API for the long-running instances (large n,
// tight q, exact solves) a blocking request/response call cannot serve.
//
// Endpoints:
//
//	POST   /v1/plan          {"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}
//	                         {"problem":"X2Y","capacity":10,"x_sizes":[7,2,1],"y_sizes":[1,2,1,1]}
//	POST   /v1/execute       {"problem":"A2A","capacity":10,"inputs":["aaa","bbb","cc","d"]}
//	                         plan-and-run: plans the instance (input sizes are
//	                         the payload byte lengths), executes the schema on
//	                         the MapReduce engine, returns the audited run
//	POST   /v2/jobs          {"type":"plan","plan":{...}} or
//	                         {"type":"execute","execute":{...}} — submit an
//	                         async job onto the bounded queue (202, or 429
//	                         when the queue is full)
//	GET    /v2/jobs/{id}     poll job status and, once succeeded, the result
//	DELETE /v2/jobs/{id}     cancel a queued or running job
//	POST   /v2/sessions      {"capacity":20,"sizes":[5,3,7]} — open a live
//	                         session: a continuously-maintained assignment
//	                         that absorbs add/remove/resize deltas by bounded
//	                         local repair and replans in the background
//	GET    /v2/sessions      list live sessions
//	PATCH  /v2/sessions/{id} {"deltas":[{"op":"add","size":4},
//	                         {"op":"remove","id":2},
//	                         {"op":"resize","id":0,"size":9}]} — apply a
//	                         delta batch; when drift passes the threshold a
//	                         "rebuild" job is scheduled on the v2 job queue
//	GET    /v2/sessions/{id} current schema, stable input IDs, drift stats
//	DELETE /v2/sessions/{id} close the session
//	GET    /v1/stats         cache, solver-win, job-queue, and session counters
//	GET    /healthz          liveness probe (200 even while draining)
//	GET    /readyz           readiness probe: 503 before boot recovery
//	                         finished and from the moment a drain starts;
//	                         fleet peers probe it to route around this node
//	GET    /metrics          Prometheus text exposition of every pland series
//	GET    /debug/traces     retained-trace summaries from the flight recorder
//	                         (?route=, ?status=error, ?min_ms=, ?limit=)
//	GET    /debug/traces/{id} one trace's span trees — merged from every fleet
//	                         node unless ?local=1; ?format=chrome renders
//	                         Chrome trace-event JSON for Perfetto
//	GET    /debug/pprof/     runtime profiles; all three debug surfaces move
//	                         to the separate -debug-addr listener when one is
//	                         given
//
// Every response carries an X-Request-ID header (client-provided or
// generated) that the structured request log echoes, so one failing call can
// be found in the logs from its response alone.
//
// Every request is also traced: the middleware parses an inbound W3C
// traceparent header (minting a fresh trace otherwise), handlers hang child
// spans off the request span, and every outbound fleet call re-injects the
// header, so one client call is one trace across every node it touches. The
// flight recorder retains completed traces tail-based — errored and
// slower-than -trace-slow traces always, a -trace-sample fraction of the
// rest — in a fixed -trace-buffer ring served by /debug/traces.
//
// Every error is the same JSON envelope: {"error":{"code":"...","message":"..."}}.
//
// Example:
//
//	pland -addr :8080 -cache 8192 -timeout 500ms -job-workers 4
//	curl -s localhost:8080/v1/plan -d '{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}'
//	curl -s localhost:8080/v2/jobs -d '{"type":"plan","plan":{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1],"timeout_ms":-1}}'
//	curl -s localhost:8080/v2/jobs/<id>
//
// On SIGINT/SIGTERM pland stops accepting work, drains in-flight requests
// and jobs for up to -drain, and marks whatever could not finish as failed
// with a shutdown reason rather than dropping it.
//
// With -data-dir, sessions and queued v2 jobs survive restarts and crashes:
// every applied session delta and accepted job is journaled to a write-ahead
// log under the directory (-fsync picks the durability/latency trade-off),
// periodic checkpoints keep the log compact, and the next boot replays the
// log — fingerprint-verified and audited — before the listener opens.
//
// With -peers (and -self), the node joins a static fleet: session and job
// keys place onto nodes by consistent hashing, every node serves its own
// keys and transparently proxies the rest to their owner (routing around
// peers whose /readyz stops answering), plan results are cached fleet-wide
// at each canonical key's owner, and a graceful drain hands live sessions to
// their ring successors — fingerprint-verified on arrival — before the
// process exits. See cluster.go and internal/shard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/wal"
	"repro/pkg/assign"
)

// splitPeers parses the -peers list: comma-separated base URLs, whitespace
// tolerated, trailing slashes normalized away so ring membership and -self
// compare exactly.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		cacheSize   = fs.Int("cache", assign.DefaultCacheEntries, "canonical plan cache capacity (0 disables)")
		timeout     = fs.Duration("timeout", assign.DefaultTimeout, "default per-request planning budget")
		maxTimeout  = fs.Duration("max-timeout", 10*time.Second, "largest per-request budget a synchronous client may ask for")
		maxBody     = fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
		maxInputs   = fs.Int("max-inputs", 200_000, "largest accepted instance size (total inputs)")
		maxExec     = fs.Int("max-exec-inputs", 1000, "largest instance execute runs (pair work is quadratic)")
		jobWorkers  = fs.Int("job-workers", 0, "v2 job worker pool size (0 = GOMAXPROCS)")
		queueDepth  = fs.Int("queue-depth", 64, "v2 job queue depth; beyond it submits get 429")
		resultTTL   = fs.Duration("result-ttl", 15*time.Minute, "how long finished v2 job results are retained for polling")
		maxJobTO    = fs.Duration("max-job-timeout", 5*time.Minute, "largest planning budget a v2 job may ask for")
		drain       = fs.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight requests and jobs")
		maxSess     = fs.Int("max-sessions", 64, "largest number of live v2 sessions")
		maxSessIn   = fs.Int("max-session-inputs", 10_000, "largest live input count per session")
		debugAddr   = fs.String("debug-addr", "", "separate listener for /metrics, /debug/pprof, and /debug/traces (default: served on -addr)")
		logFormat   = fs.String("log-format", "text", `log output format: "text" or "json"`)
		dataDir     = fs.String("data-dir", "", "directory for the durability WAL; empty runs in-memory only")
		fsyncMode   = fs.String("fsync", "interval", `WAL fsync policy: "always", "interval", or "never"`)
		fsyncEvery  = fs.Duration("fsync-interval", 100*time.Millisecond, "fsync cadence under -fsync=interval")
		ckptEvery   = fs.Duration("checkpoint-interval", time.Minute, "WAL snapshot-checkpoint and compaction cadence")
		self        = fs.String("self", "", "this node's advertised base URL in a -peers fleet (e.g. http://10.0.0.1:8080)")
		peers       = fs.String("peers", "", "comma-separated base URLs of every fleet node including this one; empty runs single-node")
		healthInt   = fs.Duration("health-interval", 500*time.Millisecond, "peer readiness probe cadence")
		healthFail  = fs.Int("health-fail", 2, "consecutive failed probes before a peer is routed around")
		drainGrace  = fs.Duration("drain-grace", time.Second, "pause after /readyz flips to 503 before the listener closes, so peers stop forwarding here (clustered only)")
		fleetCache  = fs.Int("fleet-cache", 0, "fleet plan-cache shard capacity in entries (0 = default)")
		traceSample = fs.Float64("trace-sample", 0.05, "fraction of fast successful traces the flight recorder keeps (errored/slow traces are always kept)")
		traceSlow   = fs.Duration("trace-slow", 250*time.Millisecond, "latency at or above which a trace is always retained")
		traceBuf    = fs.Int("trace-buffer", 512, "flight-recorder capacity in retained traces")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	var lh slog.Handler
	switch *logFormat {
	case "text":
		lh = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		lh = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "pland: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(lh)
	slog.SetDefault(logger)
	fsyncPolicy, err := wal.ParsePolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pland: %v\n", err)
		os.Exit(2)
	}
	entries := *cacheSize
	if entries == 0 {
		entries = -1 // PlannerConfig uses negative to disable, 0 for the default
	}
	pl := assign.NewPlanner(assign.PlannerConfig{CacheEntries: entries})
	// With -data-dir, whatever a previous process journaled is recovered,
	// verified, and audited here, before the listener opens.
	srv, err := newDurableServer(pl, serverConfig{
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxBodyBytes:       *maxBody,
		MaxInputs:          *maxInputs,
		MaxExecInputs:      *maxExec,
		JobWorkers:         *jobWorkers,
		QueueDepth:         *queueDepth,
		ResultTTL:          *resultTTL,
		MaxJobTimeout:      *maxJobTO,
		MaxSessions:        *maxSess,
		MaxSessionInputs:   *maxSessIn,
		DebugAddr:          *debugAddr,
		Logger:             logger,
		DataDir:            *dataDir,
		Fsync:              fsyncPolicy,
		FsyncInterval:      *fsyncEvery,
		CheckpointInterval: *ckptEvery,
		Self:               *self,
		Peers:              splitPeers(*peers),
		HealthInterval:     *healthInt,
		HealthFailAfter:    *healthFail,
		FleetCacheEntries:  *fleetCache,
		TraceSampleRate:    *traceSample,
		TraceSlow:          *traceSlow,
		TraceBufferEntries: *traceBuf,
	})
	if err != nil {
		logger.Error("starting server", "dir", *dataDir, "error", err)
		os.Exit(1)
	}
	if srv.cluster != nil {
		srv.cluster.health.Start()
		logger.Info("cluster member", "self", *self, "peers", *peers,
			"health_interval", *healthInt, "health_fail", *healthFail)
	}
	logger.Info("listening", "addr", *addr, "cache_entries", *cacheSize,
		"default_budget", *timeout, "queue_depth", *queueDepth,
		"data_dir", *dataDir, "fsync", fsyncPolicy.String())
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// newServer may raise MaxTimeout to DefaultTimeout; size the write
		// deadline from the effective value so a budget-length synchronous
		// solve can still deliver its response.
		WriteTimeout: srv.cfg.MaxTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	// The debug listener serves /metrics and pprof away from API traffic so
	// a scrape or a profile never competes with a solve for the API port.
	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		logger.Info("debug listener", "addr", *debugAddr)
		go func() {
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	select {
	case err := <-serveErr:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	logger.Info("shutdown signal received", "drain", *drain)
	// Drain sequence: flip /readyz to 503 first so peer probes (and load
	// balancers) steer traffic away, give them -drain-grace to notice while
	// the listener still serves, then stop accepting, hand every live session
	// to its ring successor, and only then tear the rest down.
	srv.startDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if srv.cluster != nil {
		time.Sleep(*drainGrace)
	}
	if err := hs.Shutdown(dctx); err != nil {
		logger.Warn("http drain", "error", err)
	}
	if srv.cluster != nil {
		srv.handoffSessions(dctx)
		srv.cluster.health.Stop()
	}
	if err := srv.Close(dctx); err != nil {
		logger.Warn("job drain; unfinished jobs marked failed", "error", err)
	}
	if ds != nil {
		if err := ds.Shutdown(dctx); err != nil {
			logger.Warn("debug listener drain", "error", err)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "error", err)
	}
	logger.Info("bye")
}
