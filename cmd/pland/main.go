// Command pland serves mapping-schema planning decisions over HTTP. It wraps
// the internal/planner portfolio — the paper's constructive algorithms raced
// against alternative packing policies, the greedy baseline, and bounded
// exact search — behind a canonicalization cache, so repeated or isomorphic
// workloads are answered without re-solving.
//
// Endpoints:
//
//	POST /v1/plan   {"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}
//	                {"problem":"X2Y","capacity":10,"x_sizes":[7,2,1],"y_sizes":[1,2,1,1]}
//	GET  /v1/stats  cache and solver-win counters
//	GET  /healthz   liveness probe
//
// Example:
//
//	pland -addr :8080 -cache 8192 -timeout 500ms
//	curl -s localhost:8080/v1/plan -d '{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
)

func main() {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheSize  = fs.Int("cache", planner.DefaultCacheEntries, "canonical plan cache capacity (0 disables)")
		timeout    = fs.Duration("timeout", planner.DefaultTimeout, "default per-request planning budget")
		maxTimeout = fs.Duration("max-timeout", 10*time.Second, "largest per-request budget a client may ask for")
		maxBody    = fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
		maxInputs  = fs.Int("max-inputs", 200_000, "largest accepted instance size (total inputs)")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	entries := *cacheSize
	if entries == 0 {
		entries = -1 // Config uses negative to disable, 0 for the default
	}
	p := planner.New(planner.Config{CacheEntries: entries})
	srv := newServer(p, serverConfig{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		MaxInputs:      *maxInputs,
	})
	log.Printf("pland: listening on %s (cache=%d entries, default budget %v)", *addr, *cacheSize, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// newServer may raise MaxTimeout to DefaultTimeout; size the write
		// deadline from the effective value so a budget-length solve can
		// still deliver its response.
		WriteTimeout: srv.cfg.MaxTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("pland: %v", err)
	}
}

// serverConfig bounds what one request may cost the service.
type serverConfig struct {
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	MaxBodyBytes   int64
	MaxInputs      int
}

// server is the HTTP front end over a Planner. It is a plain http.Handler so
// tests drive it through httptest without a listener.
type server struct {
	planner *planner.Planner
	cfg     serverConfig
	mux     *http.ServeMux
	started time.Time
}

func newServer(p *planner.Planner, cfg serverConfig) *server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = planner.DefaultTimeout
	}
	if cfg.MaxTimeout < cfg.DefaultTimeout {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInputs <= 0 {
		cfg.MaxInputs = 200_000
	}
	s := &server{planner: p, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// planRequest is the JSON body of POST /v1/plan.
type planRequest struct {
	// Problem is "A2A" or "X2Y".
	Problem string `json:"problem"`
	// Capacity is the reducer capacity q.
	Capacity core.Size `json:"capacity"`
	// Sizes holds the A2A input sizes; XSizes/YSizes the X2Y sides.
	Sizes  []core.Size `json:"sizes,omitempty"`
	XSizes []core.Size `json:"x_sizes,omitempty"`
	YSizes []core.Size `json:"y_sizes,omitempty"`
	// TimeoutMS optionally overrides the planning budget, capped by the
	// server's -max-timeout. A negative value requests the deterministic
	// await-all mode (every portfolio member is awaited; each is
	// individually bounded). It only shapes a fresh solve: an isomorphic
	// instance already cached (or in flight) is served as previously solved
	// regardless of this value — combine with NoCache to force a re-solve
	// under this request's budget.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache skips the canonicalization cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// planResponse is the JSON answer of POST /v1/plan.
type planResponse struct {
	Schema             *core.MappingSchema `json:"schema"`
	Reducers           int                 `json:"reducers"`
	Communication      core.Size           `json:"communication"`
	ReplicationRate    float64             `json:"replication_rate"`
	MaxLoad            core.Size           `json:"max_load"`
	Winner             string              `json:"winner"`
	LowerBoundReducers int                 `json:"lower_bound_reducers"`
	Gap                int                 `json:"gap"`
	Candidates         int                 `json:"candidates"`
	CacheHit           bool                `json:"cache_hit"`
	SharedFlight       bool                `json:"shared_flight"`
	ElapsedMicros      int64               `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body planRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	req, err := s.buildRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	budget := s.cfg.DefaultTimeout
	switch {
	case body.TimeoutMS < 0:
		budget = -1 // await-all mode; the request context still bounds the wait
	case body.TimeoutMS > 0:
		// Clamp in milliseconds before converting so huge values cannot
		// overflow time.Duration and dodge the cap.
		ms := int64(body.TimeoutMS)
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		budget = time.Duration(ms) * time.Millisecond
	}
	req.Budget.Timeout = budget
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()

	res, err := s.planner.Plan(ctx, req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Schema:             res.Schema,
		Reducers:           res.Cost.Reducers,
		Communication:      res.Cost.Communication,
		ReplicationRate:    res.Cost.ReplicationRate,
		MaxLoad:            res.Cost.MaxLoad,
		Winner:             res.Winner,
		LowerBoundReducers: res.LowerBoundReducers,
		Gap:                res.Gap,
		Candidates:         res.Candidates,
		CacheHit:           res.CacheHit,
		SharedFlight:       res.SharedFlight,
		ElapsedMicros:      res.Elapsed.Microseconds(),
	})
}

// buildRequest translates the wire request into a planner request.
func (s *server) buildRequest(body planRequest) (planner.Request, error) {
	req := planner.Request{Capacity: body.Capacity, NoCache: body.NoCache}
	// Validate everything request-shaped here so it uniformly maps to 400;
	// errors from Plan itself (e.g. infeasible instances) map to 422.
	if body.Capacity <= 0 {
		return req, fmt.Errorf("capacity must be positive, got %d", body.Capacity)
	}
	if n := len(body.Sizes) + len(body.XSizes) + len(body.YSizes); n > s.cfg.MaxInputs {
		return req, fmt.Errorf("instance has %d inputs, limit is %d", n, s.cfg.MaxInputs)
	}
	switch body.Problem {
	case "A2A", "a2a":
		req.Problem = core.ProblemA2A
		set, err := core.NewInputSet(body.Sizes)
		if err != nil {
			return req, fmt.Errorf("sizes: %v", err)
		}
		req.Set = set
	case "X2Y", "x2y":
		req.Problem = core.ProblemX2Y
		xs, err := core.NewInputSet(body.XSizes)
		if err != nil {
			return req, fmt.Errorf("x_sizes: %v", err)
		}
		ys, err := core.NewInputSet(body.YSizes)
		if err != nil {
			return req, fmt.Errorf("y_sizes: %v", err)
		}
		req.X, req.Y = xs, ys
	default:
		return req, fmt.Errorf("problem must be A2A or X2Y, got %q", body.Problem)
	}
	return req, nil
}

// statsResponse is the JSON answer of GET /v1/stats.
type statsResponse struct {
	planner.Stats
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:         s.planner.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pland: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
