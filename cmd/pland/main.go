// Command pland serves mapping-schema planning decisions over HTTP. It wraps
// the internal/planner portfolio — the paper's constructive algorithms raced
// against alternative packing policies, the greedy baseline, and bounded
// exact search — behind a canonicalization cache, so repeated or isomorphic
// workloads are answered without re-solving.
//
// Endpoints:
//
//	POST /v1/plan     {"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}
//	                  {"problem":"X2Y","capacity":10,"x_sizes":[7,2,1],"y_sizes":[1,2,1,1]}
//	POST /v1/execute  {"problem":"A2A","capacity":10,"inputs":["aaa","bbb","cc","d"]}
//	                  plan-and-run: plans the instance (input sizes are the
//	                  payload byte lengths), executes the schema on the
//	                  MapReduce engine via internal/exec, and returns the
//	                  audited execution alongside the plan
//	GET  /v1/stats    cache and solver-win counters
//	GET  /healthz     liveness probe
//
// Example:
//
//	pland -addr :8080 -cache 8192 -timeout 500ms
//	curl -s localhost:8080/v1/plan -d '{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}'
//	curl -s localhost:8080/v1/execute -d '{"problem":"A2A","capacity":10,"inputs":["aaa","bbb","cc","d"]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/planner"
)

func main() {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheSize  = fs.Int("cache", planner.DefaultCacheEntries, "canonical plan cache capacity (0 disables)")
		timeout    = fs.Duration("timeout", planner.DefaultTimeout, "default per-request planning budget")
		maxTimeout = fs.Duration("max-timeout", 10*time.Second, "largest per-request budget a client may ask for")
		maxBody    = fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
		maxInputs  = fs.Int("max-inputs", 200_000, "largest accepted instance size (total inputs)")
		maxExec    = fs.Int("max-exec-inputs", 1000, "largest instance /v1/execute runs (pair work is quadratic)")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	entries := *cacheSize
	if entries == 0 {
		entries = -1 // Config uses negative to disable, 0 for the default
	}
	p := planner.New(planner.Config{CacheEntries: entries})
	srv := newServer(p, serverConfig{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		MaxInputs:      *maxInputs,
		MaxExecInputs:  *maxExec,
	})
	log.Printf("pland: listening on %s (cache=%d entries, default budget %v)", *addr, *cacheSize, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// newServer may raise MaxTimeout to DefaultTimeout; size the write
		// deadline from the effective value so a budget-length solve can
		// still deliver its response.
		WriteTimeout: srv.cfg.MaxTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("pland: %v", err)
	}
}

// serverConfig bounds what one request may cost the service.
type serverConfig struct {
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	MaxBodyBytes   int64
	MaxInputs      int
	// MaxExecInputs caps /v1/execute instances separately: execution does
	// quadratic pair work, so its ceiling sits far below the planning cap.
	MaxExecInputs int
}

// server is the HTTP front end over a Planner. It is a plain http.Handler so
// tests drive it through httptest without a listener.
type server struct {
	planner *planner.Planner
	cfg     serverConfig
	mux     *http.ServeMux
	started time.Time
}

func newServer(p *planner.Planner, cfg serverConfig) *server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = planner.DefaultTimeout
	}
	if cfg.MaxTimeout < cfg.DefaultTimeout {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInputs <= 0 {
		cfg.MaxInputs = 200_000
	}
	if cfg.MaxExecInputs <= 0 {
		cfg.MaxExecInputs = 1000
	}
	s := &server{planner: p, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/execute", s.handleExecute)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// planRequest is the JSON body of POST /v1/plan.
type planRequest struct {
	// Problem is "A2A" or "X2Y".
	Problem string `json:"problem"`
	// Capacity is the reducer capacity q.
	Capacity core.Size `json:"capacity"`
	// Sizes holds the A2A input sizes; XSizes/YSizes the X2Y sides.
	Sizes  []core.Size `json:"sizes,omitempty"`
	XSizes []core.Size `json:"x_sizes,omitempty"`
	YSizes []core.Size `json:"y_sizes,omitempty"`
	// TimeoutMS optionally overrides the planning budget, capped by the
	// server's -max-timeout. A negative value requests the deterministic
	// await-all mode (every portfolio member is awaited; each is
	// individually bounded). It only shapes a fresh solve: an isomorphic
	// instance already cached (or in flight) is served as previously solved
	// regardless of this value — combine with NoCache to force a re-solve
	// under this request's budget.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache skips the canonicalization cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// planResponse is the JSON answer of POST /v1/plan.
type planResponse struct {
	Schema             *core.MappingSchema `json:"schema"`
	Reducers           int                 `json:"reducers"`
	Communication      core.Size           `json:"communication"`
	ReplicationRate    float64             `json:"replication_rate"`
	MaxLoad            core.Size           `json:"max_load"`
	Winner             string              `json:"winner"`
	LowerBoundReducers int                 `json:"lower_bound_reducers"`
	Gap                int                 `json:"gap"`
	Candidates         int                 `json:"candidates"`
	CacheHit           bool                `json:"cache_hit"`
	SharedFlight       bool                `json:"shared_flight"`
	ElapsedMicros      int64               `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body planRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	req, err := s.buildRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.Budget.Timeout = s.requestBudget(body.TimeoutMS)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()

	res, err := s.planner.Plan(ctx, req)
	if err != nil {
		writePlanError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Schema:             res.Schema,
		Reducers:           res.Cost.Reducers,
		Communication:      res.Cost.Communication,
		ReplicationRate:    res.Cost.ReplicationRate,
		MaxLoad:            res.Cost.MaxLoad,
		Winner:             res.Winner,
		LowerBoundReducers: res.LowerBoundReducers,
		Gap:                res.Gap,
		Candidates:         res.Candidates,
		CacheHit:           res.CacheHit,
		SharedFlight:       res.SharedFlight,
		ElapsedMicros:      res.Elapsed.Microseconds(),
	})
}

// requestBudget resolves a client timeout override against the server's caps.
func (s *server) requestBudget(timeoutMS int) time.Duration {
	switch {
	case timeoutMS < 0:
		return -1 // await-all mode; the request context still bounds the wait
	case timeoutMS > 0:
		// Clamp in milliseconds before converting so huge values cannot
		// overflow time.Duration and dodge the cap.
		ms := int64(timeoutMS)
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		return time.Duration(ms) * time.Millisecond
	default:
		return s.cfg.DefaultTimeout
	}
}

// writePlanError maps a planner failure to a status: budget/context
// exhaustion is a gateway timeout, everything else (e.g. an infeasible
// instance) is unprocessable.
func writePlanError(w http.ResponseWriter, err error) {
	status := http.StatusUnprocessableEntity
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, err.Error())
}

// buildRequest translates the wire request into a planner request.
func (s *server) buildRequest(body planRequest) (planner.Request, error) {
	req := planner.Request{Capacity: body.Capacity, NoCache: body.NoCache}
	// Validate everything request-shaped here so it uniformly maps to 400;
	// errors from Plan itself (e.g. infeasible instances) map to 422.
	if body.Capacity <= 0 {
		return req, fmt.Errorf("capacity must be positive, got %d", body.Capacity)
	}
	if n := len(body.Sizes) + len(body.XSizes) + len(body.YSizes); n > s.cfg.MaxInputs {
		return req, fmt.Errorf("instance has %d inputs, limit is %d", n, s.cfg.MaxInputs)
	}
	switch body.Problem {
	case "A2A", "a2a":
		req.Problem = core.ProblemA2A
		set, err := core.NewInputSet(body.Sizes)
		if err != nil {
			return req, fmt.Errorf("sizes: %v", err)
		}
		req.Set = set
	case "X2Y", "x2y":
		req.Problem = core.ProblemX2Y
		xs, err := core.NewInputSet(body.XSizes)
		if err != nil {
			return req, fmt.Errorf("x_sizes: %v", err)
		}
		ys, err := core.NewInputSet(body.YSizes)
		if err != nil {
			return req, fmt.Errorf("y_sizes: %v", err)
		}
		req.X, req.Y = xs, ys
	default:
		return req, fmt.Errorf("problem must be A2A or X2Y, got %q", body.Problem)
	}
	return req, nil
}

// executeRequest is the JSON body of POST /v1/execute. Input sizes are the
// payload byte lengths, so the planned schema's capacity bound is about the
// very bytes that are shuffled.
type executeRequest struct {
	// Problem is "A2A" or "X2Y".
	Problem string `json:"problem"`
	// Capacity is the reducer capacity q in bytes.
	Capacity core.Size `json:"capacity"`
	// Inputs holds the A2A payloads; XInputs/YInputs the X2Y sides.
	Inputs  []string `json:"inputs,omitempty"`
	XInputs []string `json:"x_inputs,omitempty"`
	YInputs []string `json:"y_inputs,omitempty"`
	// TimeoutMS and NoCache tune the planning step exactly as in /v1/plan.
	TimeoutMS int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
	// ReturnPairs includes the processed pair IDs in the response (capped).
	ReturnPairs bool `json:"return_pairs,omitempty"`
}

// executeResponse is the JSON answer of POST /v1/execute.
type executeResponse struct {
	Schema         *core.MappingSchema `json:"schema"`
	Reducers       int                 `json:"reducers"`
	Winner         string              `json:"winner"`
	CacheHit       bool                `json:"cache_hit"`
	Pairs          int64               `json:"pairs"`
	PairIDs        []string            `json:"pair_ids,omitempty"`
	ShuffleRecords int64               `json:"shuffle_records"`
	ShuffleBytes   int64               `json:"shuffle_bytes"`
	MaxReducerLoad int64               `json:"max_reducer_load"`
	Audited        bool                `json:"audited"`
	ElapsedMicros  int64               `json:"elapsed_us"`
}

// maxReturnedPairs caps the pair list a single response may carry.
const maxReturnedPairs = 10_000

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body executeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	req, inputs, xInputs, yInputs, err := s.buildExecuteRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.Budget.Timeout = s.requestBudget(body.TimeoutMS)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()

	plan, err := s.planner.Plan(ctx, req)
	if err != nil {
		writePlanError(w, err)
		return
	}
	// Execution has no cancellation points (its work is bounded by
	// MaxExecInputs instead), so at least don't start it for a request whose
	// budget the planning step already exhausted.
	if err := ctx.Err(); err != nil {
		writePlanError(w, err)
		return
	}
	returnPairs := body.ReturnPairs
	execRes, err := exec.Run(exec.Request{
		Name:    "pland-execute",
		Plan:    plan,
		Inputs:  inputs,
		XInputs: xInputs,
		YInputs: yInputs,
		Pair: func(a, b exec.Record, emit func([]byte)) error {
			// The pair count comes from the executor's trace; materialize the
			// IDs only when the client asked for them.
			if returnPairs {
				emit([]byte(fmt.Sprintf("%d,%d", a.ID, b.ID)))
			}
			return nil
		},
	})
	if err != nil {
		// The schema was just planned and validated, so an execution or audit
		// failure is a server-side defect, not a client error.
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("executing plan: %v", err))
		return
	}
	resp := executeResponse{
		Schema:         plan.Schema,
		Reducers:       plan.Schema.NumReducers(),
		Winner:         plan.Winner,
		CacheHit:       plan.CacheHit,
		Pairs:          execRes.PairsProcessed,
		ShuffleRecords: execRes.Counters.ShuffleRecords,
		ShuffleBytes:   execRes.Counters.ShuffleBytes,
		MaxReducerLoad: execRes.Counters.MaxReducerLoad,
		Audited:        execRes.Audited,
		ElapsedMicros:  time.Since(start).Microseconds(),
	}
	if body.ReturnPairs {
		for i, rec := range execRes.Output {
			if i >= maxReturnedPairs {
				break
			}
			resp.PairIDs = append(resp.PairIDs, string(rec))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildExecuteRequest validates the execute body and derives the planner
// request plus the executor inputs.
func (s *server) buildExecuteRequest(body executeRequest) (planner.Request, [][]byte, [][]byte, [][]byte, error) {
	req := planner.Request{Capacity: body.Capacity, NoCache: body.NoCache}
	if body.Capacity <= 0 {
		return req, nil, nil, nil, fmt.Errorf("capacity must be positive, got %d", body.Capacity)
	}
	if n := len(body.Inputs) + len(body.XInputs) + len(body.YInputs); n > s.cfg.MaxExecInputs {
		return req, nil, nil, nil, fmt.Errorf("instance has %d inputs, execution limit is %d", n, s.cfg.MaxExecInputs)
	}
	toSizes := func(field string, payloads []string) (*core.InputSet, [][]byte, error) {
		sizes := make([]core.Size, len(payloads))
		data := make([][]byte, len(payloads))
		for i, p := range payloads {
			sizes[i] = core.Size(len(p))
			data[i] = []byte(p)
		}
		set, err := core.NewInputSet(sizes)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", field, err)
		}
		return set, data, nil
	}
	switch body.Problem {
	case "A2A", "a2a":
		req.Problem = core.ProblemA2A
		set, data, err := toSizes("inputs", body.Inputs)
		if err != nil {
			return req, nil, nil, nil, err
		}
		req.Set = set
		return req, data, nil, nil, nil
	case "X2Y", "x2y":
		req.Problem = core.ProblemX2Y
		xs, xData, err := toSizes("x_inputs", body.XInputs)
		if err != nil {
			return req, nil, nil, nil, err
		}
		ys, yData, err := toSizes("y_inputs", body.YInputs)
		if err != nil {
			return req, nil, nil, nil, err
		}
		req.X, req.Y = xs, ys
		return req, nil, xData, yData, nil
	default:
		return req, nil, nil, nil, fmt.Errorf("problem must be A2A or X2Y, got %q", body.Problem)
	}
}

// statsResponse is the JSON answer of GET /v1/stats.
type statsResponse struct {
	planner.Stats
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:         s.planner.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pland: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
