// Command pland serves mapping-schema planning and execution over HTTP. It
// fronts the pkg/assign SDK — the paper's constructive algorithms raced
// against alternative packing policies, the greedy baseline, and bounded
// exact search, behind a canonicalization cache — with a synchronous v1 API
// and an asynchronous v2 job API for the long-running instances (large n,
// tight q, exact solves) a blocking request/response call cannot serve.
//
// Endpoints:
//
//	POST   /v1/plan          {"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}
//	                         {"problem":"X2Y","capacity":10,"x_sizes":[7,2,1],"y_sizes":[1,2,1,1]}
//	POST   /v1/execute       {"problem":"A2A","capacity":10,"inputs":["aaa","bbb","cc","d"]}
//	                         plan-and-run: plans the instance (input sizes are
//	                         the payload byte lengths), executes the schema on
//	                         the MapReduce engine, returns the audited run
//	POST   /v2/jobs          {"type":"plan","plan":{...}} or
//	                         {"type":"execute","execute":{...}} — submit an
//	                         async job onto the bounded queue (202, or 429
//	                         when the queue is full)
//	GET    /v2/jobs/{id}     poll job status and, once succeeded, the result
//	DELETE /v2/jobs/{id}     cancel a queued or running job
//	POST   /v2/sessions      {"capacity":20,"sizes":[5,3,7]} — open a live
//	                         session: a continuously-maintained assignment
//	                         that absorbs add/remove/resize deltas by bounded
//	                         local repair and replans in the background
//	GET    /v2/sessions      list live sessions
//	PATCH  /v2/sessions/{id} {"deltas":[{"op":"add","size":4},
//	                         {"op":"remove","id":2},
//	                         {"op":"resize","id":0,"size":9}]} — apply a
//	                         delta batch; when drift passes the threshold a
//	                         "rebuild" job is scheduled on the v2 job queue
//	GET    /v2/sessions/{id} current schema, stable input IDs, drift stats
//	DELETE /v2/sessions/{id} close the session
//	GET    /v1/stats         cache, solver-win, and job-queue counters
//	GET    /healthz          liveness probe
//
// Every error is the same JSON envelope: {"error":{"code":"...","message":"..."}}.
//
// Example:
//
//	pland -addr :8080 -cache 8192 -timeout 500ms -job-workers 4
//	curl -s localhost:8080/v1/plan -d '{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}'
//	curl -s localhost:8080/v2/jobs -d '{"type":"plan","plan":{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1],"timeout_ms":-1}}'
//	curl -s localhost:8080/v2/jobs/<id>
//
// On SIGINT/SIGTERM pland stops accepting work, drains in-flight requests
// and jobs for up to -drain, and marks whatever could not finish as failed
// with a shutdown reason rather than dropping it.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/assign"
)

func main() {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheSize  = fs.Int("cache", assign.DefaultCacheEntries, "canonical plan cache capacity (0 disables)")
		timeout    = fs.Duration("timeout", assign.DefaultTimeout, "default per-request planning budget")
		maxTimeout = fs.Duration("max-timeout", 10*time.Second, "largest per-request budget a synchronous client may ask for")
		maxBody    = fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
		maxInputs  = fs.Int("max-inputs", 200_000, "largest accepted instance size (total inputs)")
		maxExec    = fs.Int("max-exec-inputs", 1000, "largest instance execute runs (pair work is quadratic)")
		jobWorkers = fs.Int("job-workers", 0, "v2 job worker pool size (0 = GOMAXPROCS)")
		queueDepth = fs.Int("queue-depth", 64, "v2 job queue depth; beyond it submits get 429")
		resultTTL  = fs.Duration("result-ttl", 15*time.Minute, "how long finished v2 job results are retained for polling")
		maxJobTO   = fs.Duration("max-job-timeout", 5*time.Minute, "largest planning budget a v2 job may ask for")
		drain      = fs.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight requests and jobs")
		maxSess    = fs.Int("max-sessions", 64, "largest number of live v2 sessions")
		maxSessIn  = fs.Int("max-session-inputs", 10_000, "largest live input count per session")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	entries := *cacheSize
	if entries == 0 {
		entries = -1 // PlannerConfig uses negative to disable, 0 for the default
	}
	pl := assign.NewPlanner(assign.PlannerConfig{CacheEntries: entries})
	srv := newServer(pl, serverConfig{
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		MaxBodyBytes:     *maxBody,
		MaxInputs:        *maxInputs,
		MaxExecInputs:    *maxExec,
		JobWorkers:       *jobWorkers,
		QueueDepth:       *queueDepth,
		ResultTTL:        *resultTTL,
		MaxJobTimeout:    *maxJobTO,
		MaxSessions:      *maxSess,
		MaxSessionInputs: *maxSessIn,
	})
	log.Printf("pland: listening on %s (cache=%d entries, default budget %v, queue depth %d)",
		*addr, *cacheSize, *timeout, *queueDepth)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// newServer may raise MaxTimeout to DefaultTimeout; size the write
		// deadline from the effective value so a budget-length synchronous
		// solve can still deliver its response.
		WriteTimeout: srv.cfg.MaxTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	select {
	case err := <-serveErr:
		log.Fatalf("pland: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	log.Printf("pland: shutdown signal received, draining for up to %v", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("pland: http drain: %v", err)
	}
	if err := srv.Close(dctx); err != nil {
		log.Printf("pland: job drain: %v (unfinished jobs marked failed)", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pland: %v", err)
	}
	log.Printf("pland: bye")
}
