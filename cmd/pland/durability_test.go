package main

// In-process crash-recovery tests: a durable server is driven over HTTP,
// "crashed" (WAL closed with NO final checkpoint, jobs drained with no done
// records, sessions closed with no close records — exactly the state a
// SIGKILL leaves after the last fsync), and rebooted onto the same data dir.
// The shell script scripts/e2e-crash-recovery.sh does the same dance against
// a real process with a real kill -9.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/wal"
	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

func durableConfig(dataDir string) serverConfig {
	return serverConfig{
		DataDir: dataDir,
		// SyncAlways makes every acked request durable, so the in-process
		// crash (which drops nothing that was fsynced) loses zero acked work.
		Fsync: wal.SyncAlways,
		// The periodic loop stays quiet; tests drive checkpoints explicitly.
		CheckpointInterval: time.Hour,
	}
}

// bootDurable builds a durable server plus an HTTP front for it.
func bootDurable(t *testing.T, dataDir string) (*server, *httptest.Server, *plandclient.Client) {
	t.Helper()
	s, err := newDurableServer(assign.NewPlanner(assign.PlannerConfig{}), durableConfig(dataDir))
	if err != nil {
		t.Fatalf("newDurableServer: %v", err)
	}
	srv := httptest.NewServer(s)
	return s, srv, plandclient.New(srv.URL)
}

// crash simulates a kill -9 after the last fsync: no final checkpoint, no
// close records, no done records for unfinished jobs.
func crash(t *testing.T, s *server, srv *httptest.Server) {
	t.Helper()
	srv.Close()
	s.stopCheckpointer()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.jobs.Shutdown(ctx)
	s.closeSessions()
	if err := s.wal.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}
}

func sessionFingerprint(t *testing.T, s *server, id string) uint64 {
	t.Helper()
	s.sessMu.Lock()
	entry := s.sessions[id]
	s.sessMu.Unlock()
	if entry == nil {
		t.Fatalf("session %s not live", id)
	}
	return entry.sess.State().Fingerprint()
}

func TestCrashRecoversSessions(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	s1, srv1, c1 := bootDurable(t, dataDir)

	kept, err := c1.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 64, Sizes: []assign.Size{8, 5, 7, 3, 9}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := c1.UpdateSession(ctx, kept.ID,
		plandclient.AddDelta(6),
		plandclient.RemoveDelta(1),
		plandclient.ResizeDelta(0, 12),
	); err != nil {
		t.Fatalf("UpdateSession: %v", err)
	}
	doomed, err := c1.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 32, Sizes: []assign.Size{4, 4}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("CreateSession(doomed): %v", err)
	}
	if _, err := c1.DeleteSession(ctx, doomed.ID); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	wantFP := sessionFingerprint(t, s1, kept.ID)
	wantStats := func() assign.SessionStats {
		s1.sessMu.Lock()
		defer s1.sessMu.Unlock()
		return s1.sessions[kept.ID].sess.Stats()
	}()
	crash(t, s1, srv1)

	s2, srv2, c2 := bootDurable(t, dataDir)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Close()
		s2.Close(dctx)
	}()
	if got := sessionFingerprint(t, s2, kept.ID); got != wantFP {
		t.Fatalf("recovered fingerprint %#x, pre-crash %#x", got, wantFP)
	}
	gotStats := func() assign.SessionStats {
		s2.sessMu.Lock()
		defer s2.sessMu.Unlock()
		return s2.sessions[kept.ID].sess.Stats()
	}()
	if gotStats.Inputs != wantStats.Inputs || gotStats.Adds != wantStats.Adds ||
		gotStats.Removes != wantStats.Removes || gotStats.Version != wantStats.Version {
		t.Fatalf("recovered stats %+v, pre-crash %+v", gotStats, wantStats)
	}
	s2.sessMu.Lock()
	_, resurrected := s2.sessions[doomed.ID]
	s2.sessMu.Unlock()
	if resurrected {
		t.Fatalf("deleted session %s resurrected by recovery", doomed.ID)
	}

	// The recovered session must keep serving deltas over HTTP.
	patch, err := c2.UpdateSession(ctx, kept.ID, plandclient.AddDelta(5))
	if err != nil {
		t.Fatalf("UpdateSession after recovery: %v", err)
	}
	if patch.Applied != 1 {
		t.Fatalf("patch after recovery = %+v", patch)
	}
}

// TestCrashSurvivesCheckpoint is the same round trip with a compaction in
// the middle: the checkpoint must re-anchor everything it drops segments for.
func TestCrashSurvivesCheckpoint(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	s1, srv1, c1 := bootDurable(t, dataDir)

	sess, err := c1.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 64, Sizes: []assign.Size{8, 5, 7}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := c1.UpdateSession(ctx, sess.ID, plandclient.AddDelta(6), plandclient.AddDelta(2)); err != nil {
		t.Fatalf("UpdateSession: %v", err)
	}
	if err := s1.checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n := s1.wal.Segments(); n != 1 {
		t.Fatalf("Segments() = %d after checkpoint, want 1", n)
	}
	// Deltas after the checkpoint replay on top of the barrier snapshot.
	if _, err := c1.UpdateSession(ctx, sess.ID, plandclient.RemoveDelta(0)); err != nil {
		t.Fatalf("UpdateSession post-checkpoint: %v", err)
	}
	wantFP := sessionFingerprint(t, s1, sess.ID)
	crash(t, s1, srv1)

	s2, srv2, _ := bootDurable(t, dataDir)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Close()
		s2.Close(dctx)
	}()
	if got := sessionFingerprint(t, s2, sess.ID); got != wantFP {
		t.Fatalf("post-checkpoint recovery fingerprint %#x, pre-crash %#x", got, wantFP)
	}
}

func TestCrashReenqueuesJobs(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	s1, srv1, c1 := bootDurable(t, dataDir)

	// A job that finishes before the crash must NOT re-run after it.
	done, err := c1.SubmitPlan(ctx, plandclient.PlanRequest{
		Problem: "A2A", Capacity: 10, Sizes: []assign.Size{3, 3, 2}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("SubmitPlan: %v", err)
	}
	if _, err := c1.WaitJob(ctx, done.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	// A journaled-but-unfinished job (accepted, then the process died before
	// a worker finished it) must come back. Journaling it directly pins the
	// exact on-disk state such a job leaves without racing a live worker.
	queuedBody := jobSubmitRequest{Type: jobTypePlan, Plan: &planRequest{
		Problem: "A2A", Capacity: 10, Sizes: []assign.Size{4, 4, 1}, TimeoutMS: -1,
	}}
	s1.journalJobSubmit(context.Background(), "j-queued", jobTypePlan, queuedBody)
	crash(t, s1, srv1)

	s2, srv2, c2 := bootDurable(t, dataDir)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Close()
		s2.Close(dctx)
	}()
	if _, err := s2.jobs.Get(done.ID); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("finished job %s re-appeared after recovery: %v", done.ID, err)
	}
	job, err := c2.WaitJob(ctx, "j-queued", 5*time.Millisecond)
	if err != nil {
		t.Fatalf("recovered job: %v", err)
	}
	if job.State != "succeeded" {
		t.Fatalf("recovered job finished as %q: %+v", job.State, job.Error)
	}
}

// TestShutdownDrainPreservesState: a clean Close must behave like the WAL
// contract promises — drained sessions and still-queued jobs survive into
// the next boot (Close is a planned restart, not a data-loss event).
func TestShutdownDrainPreservesState(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	s1, srv1, c1 := bootDurable(t, dataDir)

	sess, err := c1.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 64, Sizes: []assign.Size{8, 5, 7}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	wantFP := sessionFingerprint(t, s1, sess.ID)
	srv1.Close()
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := s1.Close(dctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cancel()

	s2, srv2, _ := bootDurable(t, dataDir)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Close()
		s2.Close(dctx)
	}()
	if got := sessionFingerprint(t, s2, sess.ID); got != wantFP {
		t.Fatalf("clean-restart fingerprint %#x, pre-restart %#x", got, wantFP)
	}
}
