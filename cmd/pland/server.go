package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/pkg/assign"
)

// serverConfig bounds what one request — synchronous or queued — may cost
// the service.
type serverConfig struct {
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	MaxBodyBytes   int64
	MaxInputs      int
	// MaxExecInputs caps execute instances separately: execution does
	// quadratic pair work, so its ceiling sits far below the planning cap.
	MaxExecInputs int
	// JobWorkers, QueueDepth, and ResultTTL shape the v2 job queue.
	JobWorkers int
	QueueDepth int
	ResultTTL  time.Duration
	// MaxJobTimeout caps the planning budget of one async job; it may far
	// exceed MaxTimeout because nothing blocks on the answer.
	MaxJobTimeout time.Duration
	// MaxSessions bounds how many v2 sessions may be live at once, and
	// MaxSessionInputs bounds the live inputs of each.
	MaxSessions      int
	MaxSessionInputs int
	// DebugAddr is the separate listener -debug-addr serves /metrics,
	// /debug/pprof, and /debug/traces on; when empty they mount on the main
	// mux instead.
	DebugAddr string
	// TraceSampleRate, TraceSlow, and TraceBufferEntries shape the flight
	// recorder (see internal/obs): the fraction of fast-OK traces kept, the
	// latency at which a trace is always kept, and the ring capacity.
	TraceSampleRate    float64
	TraceSlow          time.Duration
	TraceBufferEntries int
	// Logger receives one structured line per request; nil uses slog.Default.
	Logger *slog.Logger
	// DataDir, when non-empty, makes sessions and queued jobs durable: a WAL
	// lives under it, boot replays it (see newDurableServer), and Fsync,
	// FsyncInterval, and CheckpointInterval shape the log's disciplines.
	DataDir            string
	Fsync              wal.Policy
	FsyncInterval      time.Duration
	CheckpointInterval time.Duration
	// Self and Peers wire the node into a static fleet (see cluster.go):
	// Peers is every node's advertised base URL including this one, Self is
	// this node's own entry. Empty Peers runs single-node with no cluster
	// layer at all. HealthInterval/HealthFailAfter shape peer readiness
	// probing; FleetCacheEntries sizes this node's fleet plan-cache shard.
	Self              string
	Peers             []string
	HealthInterval    time.Duration
	HealthFailAfter   int
	FleetCacheEntries int
}

// server is the HTTP front end over the assign SDK. It is a plain
// http.Handler so tests drive it through httptest without a listener.
type server struct {
	planner  *assign.Planner
	jobs     *jobs.Manager
	cfg      serverConfig
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the observability middleware
	log      *slog.Logger
	recorder *obs.Recorder
	started  time.Time

	sessMu   sync.Mutex
	sessions map[string]*sessionEntry

	// Cluster layer (nil single-node; see cluster.go). ready flips once boot
	// recovery finished; draining flips when shutdown starts — /readyz is the
	// AND of the two, and peers probe it.
	cluster  *cluster
	ready    atomic.Bool
	draining atomic.Bool

	// Durability (nil/zero without -data-dir; see durability.go).
	wal            *wal.Log
	walMu          sync.Mutex
	walJobs        map[string]walJob
	checkpointStop chan struct{}
	checkpointOnce sync.Once
	checkpointWG   sync.WaitGroup
}

func newServer(pl *assign.Planner, cfg serverConfig) *server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = assign.DefaultTimeout
	}
	if cfg.MaxTimeout < cfg.DefaultTimeout {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInputs <= 0 {
		cfg.MaxInputs = 200_000
	}
	if cfg.MaxExecInputs <= 0 {
		cfg.MaxExecInputs = 1000
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ResultTTL <= 0 {
		cfg.ResultTTL = 15 * time.Minute
	}
	if cfg.MaxJobTimeout < cfg.MaxTimeout {
		cfg.MaxJobTimeout = cfg.MaxTimeout
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.MaxSessionInputs <= 0 {
		cfg.MaxSessionInputs = 10_000
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &server{
		planner: pl,
		cfg:     cfg,
		mux:     http.NewServeMux(),
		log:     cfg.Logger,
		recorder: obs.NewRecorder(obs.RecorderConfig{
			Capacity:      cfg.TraceBufferEntries,
			SampleRate:    cfg.TraceSampleRate,
			SlowThreshold: cfg.TraceSlow,
			Node:          cfg.Self,
		}),
		started:  time.Now(),
		sessions: make(map[string]*sessionEntry),
		walJobs:  make(map[string]walJob),
	}
	s.jobs = jobs.New(jobs.Config{
		Workers:    cfg.JobWorkers,
		QueueDepth: cfg.QueueDepth,
		ResultTTL:  cfg.ResultTTL,
		OnFinish:   s.jobFinished,
	})
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/execute", s.handleExecute)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v2/jobs", s.handleJobs)
	s.mux.HandleFunc("/v2/jobs/", s.handleJob)
	s.mux.HandleFunc("/v2/sessions", s.handleSessions)
	s.mux.HandleFunc("/v2/sessions/", s.handleSession)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/internal/handoff", s.handleHandoff)
	s.mux.HandleFunc("/internal/cache/", s.handleFleetCache)
	if cfg.DebugAddr == "" {
		s.registerDebug(s.mux)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, notFound("no such endpoint"))
	})
	s.handler = withObs(s.log, s.recorder, s.mux)
	// Without a WAL there is no boot recovery to wait for; newDurableServer
	// flips readiness itself once recovery and the re-anchor checkpoint ran.
	if cfg.DataDir == "" {
		s.ready.Store(true)
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close drains the job queue — in-flight jobs that outlive ctx are marked
// failed with a shutdown reason — and then shuts every live session down.
// With a WAL, a final checkpoint runs first (so the compacted log carries the
// complete live state), drained jobs get no done records, and sessions get no
// close records: both re-appear intact on the next boot.
func (s *server) Close(ctx context.Context) error {
	if s.wal != nil {
		s.stopCheckpointer()
		if err := s.checkpoint(); err != nil {
			s.log.Warn("final wal checkpoint", "error", err)
		}
	}
	err := s.jobs.Shutdown(ctx)
	s.closeSessions()
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil {
			s.log.Warn("wal close", "error", cerr)
		}
	}
	return err
}

// Error envelope: every handler failure, v1 and v2, is
// {"error":{"code":"...","message":"..."}} with a stable machine-readable
// code and the HTTP status carried out of band.
const (
	codeBadRequest       = "bad_request"
	codeMethodNotAllowed = "method_not_allowed"
	codeNotFound         = "not_found"
	codeConflict         = "conflict"
	codeQueueFull        = "queue_full"
	codeSessionLimit     = "session_limit"
	codeUnprocessable    = "unprocessable"
	codePlanTimeout      = "plan_timeout"
	codeCanceled         = "canceled"
	codeShuttingDown     = "shutting_down"
	codePeerUnreachable  = "peer_unreachable"
	codeInternal         = "internal"
)

// apiError is one handler failure. It implements error (and unwraps to its
// cause) so it can round-trip through the jobs manager intact.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	cause   error
}

func (e *apiError) Error() string { return e.Message }
func (e *apiError) Unwrap() error { return e.cause }

type errorEnvelope struct {
	Error *apiError `json:"error"`
}

func badRequestf(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: codeBadRequest, Message: fmt.Sprintf(format, args...)}
}

func methodNotAllowed(want string) *apiError {
	return &apiError{Status: http.StatusMethodNotAllowed, Code: codeMethodNotAllowed, Message: want + " required"}
}

func notFound(msg string) *apiError {
	return &apiError{Status: http.StatusNotFound, Code: codeNotFound, Message: msg}
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, errorEnvelope{Error: e})
}

// planError maps a planning failure to an envelope: budget/context
// exhaustion is a gateway timeout, everything else (e.g. an infeasible
// instance) is unprocessable.
func planError(err error) *apiError {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &apiError{Status: http.StatusGatewayTimeout, Code: codePlanTimeout, Message: err.Error(), cause: err}
	}
	return &apiError{Status: http.StatusUnprocessableEntity, Code: codeUnprocessable, Message: err.Error(), cause: err}
}

// planRequest is the JSON body of POST /v1/plan and of the "plan" payload
// of a v2 job.
type planRequest struct {
	// Problem is "A2A" or "X2Y".
	Problem string `json:"problem"`
	// Capacity is the reducer capacity q.
	Capacity assign.Size `json:"capacity"`
	// Sizes holds the A2A input sizes; XSizes/YSizes the X2Y sides.
	Sizes  []assign.Size `json:"sizes,omitempty"`
	XSizes []assign.Size `json:"x_sizes,omitempty"`
	YSizes []assign.Size `json:"y_sizes,omitempty"`
	// TimeoutMS optionally overrides the planning budget, capped by the
	// server's -max-timeout (synchronous) or -max-job-timeout (v2 jobs). A
	// negative value requests the deterministic await-all mode (every
	// portfolio member is awaited; each is individually bounded). It only
	// shapes a fresh solve: an isomorphic instance already cached (or in
	// flight) is served as previously solved regardless of this value —
	// combine with NoCache to force a re-solve under this request's budget.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache skips the canonicalization cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// planResponse is the JSON answer of POST /v1/plan and the result of a
// succeeded "plan" job.
type planResponse struct {
	Schema             *assign.MappingSchema `json:"schema"`
	Reducers           int                   `json:"reducers"`
	Communication      assign.Size           `json:"communication"`
	ReplicationRate    float64               `json:"replication_rate"`
	MaxLoad            assign.Size           `json:"max_load"`
	Winner             string                `json:"winner"`
	LowerBoundReducers int                   `json:"lower_bound_reducers"`
	Gap                int                   `json:"gap"`
	Candidates         int                   `json:"candidates"`
	CacheHit           bool                  `json:"cache_hit"`
	SharedFlight       bool                  `json:"shared_flight"`
	// FleetCacheHit marks a result served from the fleet-wide cluster cache
	// rather than a local solve (see planFleet in cluster.go).
	FleetCacheHit bool  `json:"fleet_cache_hit,omitempty"`
	ElapsedMicros int64 `json:"elapsed_us"`
}

// decodeBody decodes a JSON body under the server's size cap.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding request: %v", err)
	}
	return nil
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, methodNotAllowed("POST"))
		return
	}
	var body planRequest
	if aerr := s.decodeBody(w, r, &body); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	// planFleet consults the fleet-wide cluster cache around the solve; it is
	// exactly runPlan when unclustered or when the client opted out of caching.
	resp, aerr := s.planFleet(ctx, body)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// validSizes rejects what assign.Plan itself would reject, but as an
// allocation-free 400 instead of a later 422.
func validSizes(field string, sizes []assign.Size) *apiError {
	if len(sizes) == 0 {
		return badRequestf("%s: no inputs", field)
	}
	for i, sz := range sizes {
		if sz <= 0 {
			return badRequestf("%s: input %d has non-positive size %d", field, i, sz)
		}
	}
	return nil
}

// validatePlan checks the wire request without building anything, so v2
// submit can fail malformed jobs fast and cheaply. Validation failures map
// uniformly to 400; failures from planning itself (e.g. infeasible
// instances) map to 422 later.
func (s *server) validatePlan(body planRequest) *apiError {
	if body.Capacity <= 0 {
		return badRequestf("capacity must be positive, got %d", body.Capacity)
	}
	if n := len(body.Sizes) + len(body.XSizes) + len(body.YSizes); n > s.cfg.MaxInputs {
		return badRequestf("instance has %d inputs, limit is %d", n, s.cfg.MaxInputs)
	}
	switch body.Problem {
	case "A2A", "a2a":
		return validSizes("sizes", body.Sizes)
	case "X2Y", "x2y":
		if aerr := validSizes("x_sizes", body.XSizes); aerr != nil {
			return aerr
		}
		return validSizes("y_sizes", body.YSizes)
	default:
		return badRequestf("problem must be A2A or X2Y, got %q", body.Problem)
	}
}

// planOptions assembles the SDK options for a validated request.
func (s *server) planOptions(body planRequest) ([]assign.Option, *apiError) {
	if aerr := s.validatePlan(body); aerr != nil {
		return nil, aerr
	}
	opts := []assign.Option{assign.Capacity(body.Capacity)}
	switch body.Problem {
	case "A2A", "a2a":
		opts = append(opts, assign.A2A(body.Sizes))
	default:
		opts = append(opts, assign.X2Y(body.XSizes, body.YSizes))
	}
	if body.NoCache {
		opts = append(opts, assign.NoCache())
	}
	return opts, nil
}

// runPlan is the one core both /v1/plan and "plan" jobs execute; maxBudget
// is the cap the surface grants (MaxTimeout synchronously, MaxJobTimeout
// for jobs).
func (s *server) runPlan(ctx context.Context, body planRequest, maxBudget time.Duration) (*planResponse, *apiError) {
	opts, aerr := s.planOptions(body)
	if aerr != nil {
		return nil, aerr
	}
	opts = append(opts, assign.Timeout(requestBudget(body.TimeoutMS, s.cfg.DefaultTimeout, maxBudget)))
	res, err := s.planner.Plan(ctx, opts...)
	if err != nil {
		return nil, planError(err)
	}
	return &planResponse{
		Schema:             res.Schema,
		Reducers:           res.Cost.Reducers,
		Communication:      res.Cost.Communication,
		ReplicationRate:    res.Cost.ReplicationRate,
		MaxLoad:            res.Cost.MaxLoad,
		Winner:             res.Winner,
		LowerBoundReducers: res.LowerBoundReducers,
		Gap:                res.Gap,
		Candidates:         res.Candidates,
		CacheHit:           res.CacheHit,
		SharedFlight:       res.SharedFlight,
		ElapsedMicros:      res.Elapsed.Microseconds(),
	}, nil
}

// requestBudget resolves a client timeout override against a surface cap.
func requestBudget(timeoutMS int, def, max time.Duration) time.Duration {
	switch {
	case timeoutMS < 0:
		return -1 // await-all mode; the request context still bounds the wait
	case timeoutMS > 0:
		// Clamp in milliseconds before converting so huge values cannot
		// overflow time.Duration and dodge the cap.
		ms := int64(timeoutMS)
		if maxMS := max.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		return time.Duration(ms) * time.Millisecond
	default:
		return def
	}
}

// executeRequest is the JSON body of POST /v1/execute and of the "execute"
// payload of a v2 job. Input sizes are the payload byte lengths, so the
// planned schema's capacity bound is about the very bytes that are shuffled.
type executeRequest struct {
	// Problem is "A2A" or "X2Y".
	Problem string `json:"problem"`
	// Capacity is the reducer capacity q in bytes.
	Capacity assign.Size `json:"capacity"`
	// Inputs holds the A2A payloads; XInputs/YInputs the X2Y sides.
	Inputs  []string `json:"inputs,omitempty"`
	XInputs []string `json:"x_inputs,omitempty"`
	YInputs []string `json:"y_inputs,omitempty"`
	// TimeoutMS and NoCache tune the planning step exactly as in /v1/plan.
	TimeoutMS int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
	// ReturnPairs includes the processed pair IDs in the response (capped).
	ReturnPairs bool `json:"return_pairs,omitempty"`
	// MemoryBudget, when positive, bounds the execution's in-memory shuffle
	// bytes; over-budget reduce partitions spill sorted run files to disk
	// and merge them back at reduce time. Output is unchanged; the response
	// reports the realized spill volume.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
}

// executeResponse is the JSON answer of POST /v1/execute and the result of
// a succeeded "execute" job.
type executeResponse struct {
	Schema         *assign.MappingSchema `json:"schema"`
	Reducers       int                   `json:"reducers"`
	Winner         string                `json:"winner"`
	CacheHit       bool                  `json:"cache_hit"`
	Pairs          int64                 `json:"pairs"`
	PairIDs        []string              `json:"pair_ids,omitempty"`
	ShuffleRecords int64                 `json:"shuffle_records"`
	ShuffleBytes   int64                 `json:"shuffle_bytes"`
	MaxReducerLoad int64                 `json:"max_reducer_load"`
	// Spill figures are zero unless the request set a memory_budget the run
	// exceeded.
	SpillRuns       int64 `json:"spill_runs,omitempty"`
	SpillPartitions int64 `json:"spill_partitions,omitempty"`
	SpillBytes      int64 `json:"spill_bytes,omitempty"`
	Audited         bool  `json:"audited"`
	ElapsedMicros   int64 `json:"elapsed_us"`
}

// maxReturnedPairs caps the pair list a single response may carry.
const maxReturnedPairs = 10_000

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, methodNotAllowed("POST"))
		return
	}
	var body executeRequest
	if aerr := s.decodeBody(w, r, &body); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	resp, aerr := s.runExecute(ctx, body, s.cfg.MaxTimeout)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// validPayloads rejects what the SDK's derived input set would reject,
// without copying the payloads.
func validPayloads(field string, in []string) *apiError {
	if len(in) == 0 {
		return badRequestf("%s: no inputs", field)
	}
	for i, p := range in {
		if len(p) == 0 {
			return badRequestf("%s: input %d is empty (sizes are payload byte lengths and must be positive)", field, i)
		}
	}
	return nil
}

// validateExecute checks the wire request without materializing payload
// copies — v2 submit runs it synchronously for every job.
func (s *server) validateExecute(body executeRequest) *apiError {
	if body.Capacity <= 0 {
		return badRequestf("capacity must be positive, got %d", body.Capacity)
	}
	if n := len(body.Inputs) + len(body.XInputs) + len(body.YInputs); n > s.cfg.MaxExecInputs {
		return badRequestf("instance has %d inputs, execution limit is %d", n, s.cfg.MaxExecInputs)
	}
	switch body.Problem {
	case "A2A", "a2a":
		return validPayloads("inputs", body.Inputs)
	case "X2Y", "x2y":
		if aerr := validPayloads("x_inputs", body.XInputs); aerr != nil {
			return aerr
		}
		return validPayloads("y_inputs", body.YInputs)
	default:
		return badRequestf("problem must be A2A or X2Y, got %q", body.Problem)
	}
}

// executeOptions assembles the SDK options for a validated request, minus
// the pair logic.
func (s *server) executeOptions(body executeRequest) ([]assign.Option, *apiError) {
	if aerr := s.validateExecute(body); aerr != nil {
		return nil, aerr
	}
	toPayloads := func(in []string) [][]byte {
		data := make([][]byte, len(in))
		for i, p := range in {
			data[i] = []byte(p)
		}
		return data
	}
	opts := []assign.Option{assign.Capacity(body.Capacity), assign.Named("pland-execute")}
	switch body.Problem {
	case "A2A", "a2a":
		opts = append(opts, assign.Inputs(toPayloads(body.Inputs)))
	default:
		opts = append(opts, assign.XYInputs(toPayloads(body.XInputs), toPayloads(body.YInputs)))
	}
	if body.NoCache {
		opts = append(opts, assign.NoCache())
	}
	if body.MemoryBudget > 0 {
		opts = append(opts, assign.MemoryBudget(body.MemoryBudget))
	}
	return opts, nil
}

// runExecute is the one core both /v1/execute and "execute" jobs run.
func (s *server) runExecute(ctx context.Context, body executeRequest, maxBudget time.Duration) (*executeResponse, *apiError) {
	start := time.Now()
	opts, aerr := s.executeOptions(body)
	if aerr != nil {
		return nil, aerr
	}
	returnPairs := body.ReturnPairs
	opts = append(opts,
		assign.Timeout(requestBudget(body.TimeoutMS, s.cfg.DefaultTimeout, maxBudget)),
		assign.Pair(func(a, b assign.Record, emit func([]byte)) error {
			// The pair count comes from the executor's trace; materialize
			// the IDs only when the client asked for them.
			if returnPairs {
				emit([]byte(fmt.Sprintf("%d,%d", a.ID, b.ID)))
			}
			return nil
		}),
	)
	ex, err := s.planner.Execute(ctx, opts...)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			return nil, planError(err)
		case errors.Is(err, assign.ErrInfeasible):
			return nil, planError(err)
		default:
			// The schema was planned and validated moments ago, so an
			// execution or audit failure is a server-side defect.
			return nil, &apiError{Status: http.StatusInternalServerError, Code: codeInternal,
				Message: fmt.Sprintf("executing plan: %v", err), cause: err}
		}
	}
	resp := &executeResponse{
		Schema:          ex.Plan.Schema,
		Reducers:        ex.Plan.Schema.NumReducers(),
		Winner:          ex.Plan.Winner,
		CacheHit:        ex.Plan.CacheHit,
		Pairs:           ex.PairsProcessed,
		ShuffleRecords:  ex.ShuffleRecords,
		ShuffleBytes:    ex.ShuffleBytes,
		MaxReducerLoad:  ex.MaxReducerLoad,
		SpillRuns:       ex.SpillRuns,
		SpillPartitions: ex.SpillPartitions,
		SpillBytes:      ex.SpillBytes,
		Audited:         ex.Audited,
		ElapsedMicros:   time.Since(start).Microseconds(),
	}
	if returnPairs {
		for i, rec := range ex.Output {
			if i >= maxReturnedPairs {
				break
			}
			resp.PairIDs = append(resp.PairIDs, string(rec))
		}
	}
	return resp, nil
}

// sessionsStats is the session-manager block of GET /v1/stats.
type sessionsStats struct {
	// Live is how many v2 sessions are open right now; Limit the ceiling.
	Live  int `json:"live"`
	Limit int `json:"limit"`
}

// httpStats is the request-surface block of GET /v1/stats, a thin view over
// the same gauge /metrics exports.
type httpStats struct {
	InFlight int64 `json:"in_flight"`
}

// statsResponse is the JSON answer of GET /v1/stats. The jobs block carries
// the queue state (depth, capacity, workers, running = workers busy); the
// sessions block the session-manager state.
type statsResponse struct {
	assign.Stats
	Jobs          jobs.Stats        `json:"jobs"`
	Sessions      sessionsStats     `json:"sessions"`
	HTTP          httpStats         `json:"http"`
	Trace         obs.RecorderStats `json:"trace"`
	Cluster       *clusterStats     `json:"cluster,omitempty"`
	UptimeSeconds float64           `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, methodNotAllowed("GET"))
		return
	}
	s.sessMu.Lock()
	live := len(s.sessions)
	s.sessMu.Unlock()
	resp := statsResponse{
		Stats:         s.planner.Stats(),
		Jobs:          s.jobs.Stats(),
		Sessions:      sessionsStats{Live: live, Limit: s.cfg.MaxSessions},
		HTTP:          httpStats{InFlight: obsHTTPInFlight.Value()},
		Trace:         s.recorder.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if s.cluster != nil {
		resp.Cluster = s.cluster.stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encoding response", "error", err)
	}
}
