package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/pkg/assign"
)

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/plan":           "/v1/plan",
		"/v1/execute":        "/v1/execute",
		"/v1/stats":          "/v1/stats",
		"/v2/jobs":           "/v2/jobs",
		"/v2/jobs/abc123":    "/v2/jobs/{id}",
		"/v2/sessions":       "/v2/sessions",
		"/v2/sessions/s-1":   "/v2/sessions/{id}",
		"/healthz":           "/healthz",
		"/metrics":           "/metrics",
		"/debug/pprof/":      "/debug/pprof",
		"/debug/pprof/heap":  "/debug/pprof",
		"/debug/traces":      "/debug/traces",
		"/debug/traces/abcd": "/debug/traces/{id}",
		"/":                  "other",
		"/no/such/endpoint":  "other",
		"/v2/jobs/a/b/extra": "/v2/jobs/{id}",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestRequestIDHeader(t *testing.T) {
	srv := newTestServer(t)

	// No inbound ID: the server generates a 16-hex one.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", id)
	}

	// A sane inbound ID is echoed back unchanged.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-42" {
		t.Fatalf("echoed X-Request-ID = %q, want trace-42", got)
	}

	// A hostile inbound ID (too long) is replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", 200))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("oversized inbound ID echoed back as %q, want a generated one", got)
	}
}

// TestMetricsEndpoint drives real traffic through the server and checks the
// scrape reflects it in valid exposition format. obs.Default is process-wide,
// so assertions are presence and floors, never exact counts.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)

	if resp, _ := postPlan(t, srv, `{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`pland_http_requests_total{route="/v1/plan",status="200"}`,
		`pland_http_request_seconds_bucket{route="/v1/plan",le="+Inf"}`,
		"# TYPE pland_http_requests_total counter",
		"# TYPE pland_http_request_seconds histogram",
		"# TYPE pland_planner_requests_total counter",
		"pland_planner_plan_seconds_count",
		"# TYPE pland_jobs_queue_depth gauge",
		"# TYPE pland_stream_sessions gauge",
		"# TYPE pland_exec_runs_total counter",
		"pland_http_in_flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	if !strings.HasSuffix(body, "\n") {
		t.Error("scrape does not end with a newline")
	}
}

// TestMetricsMovesToDebugAddr checks that configuring a debug listener takes
// /metrics and pprof off the API mux.
func TestMetricsMovesToDebugAddr(t *testing.T) {
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{DebugAddr: "127.0.0.1:0"})
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics on API mux = %d, want 404 when -debug-addr is set", resp.StatusCode)
	}

	dbg := httptest.NewServer(s.debugMux())
	defer dbg.Close()
	resp, err = http.Get(dbg.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics on debug mux = %d", resp.StatusCode)
	}
	resp, err = http.Get(dbg.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline on debug mux = %d", resp.StatusCode)
	}
}

// TestStatsReportsQueueAndSessions checks the /v1/stats view over the queue
// and session managers (satellite of the observability spine).
func TestStatsReportsQueueAndSessions(t *testing.T) {
	srv := newTestServer(t)

	body := `{"capacity":20,"sizes":[5,3,7]}`
	resp, err := http.Post(srv.URL+"/v2/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Jobs struct {
			QueueDepth    int `json:"queue_depth"`
			QueueCapacity int `json:"queue_capacity"`
			Workers       int `json:"workers"`
			Running       int `json:"running"`
		} `json:"jobs"`
		Sessions struct {
			Live  int `json:"live"`
			Limit int `json:"limit"`
		} `json:"sessions"`
		HTTP struct {
			InFlight int64 `json:"in_flight"`
		} `json:"http"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sessions.Live != 1 {
		t.Errorf("sessions.live = %d, want 1", stats.Sessions.Live)
	}
	if stats.Sessions.Limit <= 0 {
		t.Errorf("sessions.limit = %d, want positive", stats.Sessions.Limit)
	}
	if stats.Jobs.QueueCapacity <= 0 || stats.Jobs.Workers <= 0 {
		t.Errorf("jobs block not populated: %+v", stats.Jobs)
	}
	if stats.HTTP.InFlight < 1 {
		t.Errorf("http.in_flight = %d, want >= 1 (this very request)", stats.HTTP.InFlight)
	}
}
