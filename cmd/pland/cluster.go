package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

// Fleet headers. X-Pland-Forwarded carries the sender node on a proxied
// request and is the hop guard: a request that already hopped once is served
// (or 404s) where it lands, never proxied again, so divergent liveness views
// bounce a request at most once instead of looping it. X-Pland-Key pins the
// randomly drawn session/job ID on a forwarded create; it is honored only
// together with the forwarded header, so external clients cannot choose IDs.
const (
	headerForwarded = "X-Pland-Forwarded"
	headerPinnedID  = "X-Pland-Key"
)

var (
	obsForwarded = obs.Default.CounterVec("pland_cluster_forwarded_total",
		"Requests proxied to the key's owning peer.", "peer")
	obsForwardErrors = obs.Default.CounterVec("pland_cluster_forward_errors_total",
		"Proxied requests that died at the transport (the peer is marked down).", "peer")
	obsHandoffs = obs.Default.CounterVec("pland_cluster_handoffs_total",
		"Drain-time session handoffs by outcome (sent, send_failed, received, refused).", "outcome")
	obsFleetProbes = obs.Default.CounterVec("pland_fleet_probe_total",
		"Fleet-cache probes to remote owners, by outcome (hit, miss, error).", "outcome")
)

// cluster is the ownership-aware routing layer of one pland node: the
// consistent-hash ring every node computes identically, the local liveness
// view that routes around dead peers, this node's shard of the fleet plan
// cache, and one plandclient per peer for the structured fleet calls
// (readiness probes, session handoff, cache probe/publish). Raw keyed API
// traffic is proxied with c.proxy instead so arbitrary methods and bodies
// pass through untouched.
type cluster struct {
	self    string
	ring    *shard.Ring
	health  *shard.Health
	cache   *shard.ResultCache
	clients map[string]*plandclient.Client
	proxy   *http.Client
	maxBody int64
	log     *slog.Logger
}

// newCluster wires the fleet layer from a normalized serverConfig. The caller
// starts (and stops) health probing; a fresh cluster treats every peer as
// alive until probes or forward failures say otherwise.
func newCluster(cfg serverConfig, log *slog.Logger) (*cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: -peers needs -self (this node's advertised URL)")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: -self %q is not in -peers %v", cfg.Self, cfg.Peers)
	}
	ring, err := shard.New(cfg.Peers)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// Proxied calls may carry a full synchronous solve; give them the solve
	// budget plus headroom rather than a generic client timeout.
	timeout := cfg.MaxTimeout + 15*time.Second
	c := &cluster{
		self:    cfg.Self,
		ring:    ring,
		cache:   shard.NewResultCache(cfg.FleetCacheEntries),
		clients: make(map[string]*plandclient.Client, len(cfg.Peers)),
		proxy:   &http.Client{Timeout: timeout},
		maxBody: cfg.MaxBodyBytes,
		log:     log,
	}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		c.clients[p] = plandclient.New(p, plandclient.WithHTTPClient(&http.Client{Timeout: timeout}))
	}
	c.health = shard.NewHealth(shard.HealthConfig{
		Self:      cfg.Self,
		Peers:     cfg.Peers,
		Probe:     c.probe,
		Interval:  cfg.HealthInterval,
		FailAfter: cfg.HealthFailAfter,
	})
	return c, nil
}

// probe is one readiness check: a raw GET /readyz round trip, deliberately
// not through plandclient so the retry layer cannot stretch one probe across
// most of a probe interval. Draining peers answer 503 and so read as down,
// which steers forwarded traffic away before their listener closes.
func (c *cluster) probe(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
	if err != nil {
		return err
	}
	// Probes originate here, not from a client request, so they mint their
	// own correlation identity — without it the peer's request log has no way
	// to say which prober produced a line.
	req.Header.Set(requestIDHeader, obs.NewRequestID())
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	resp, err := c.proxy.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// routeKeyed forwards a keyed request (/v2/sessions/{id}, /v2/jobs/{id}) to
// its ring owner when that is another node. It reports true when the request
// was fully handled here (proxied, or failed); false means the caller serves
// it locally — because this node owns the key, the request already hopped
// once, or rerouting around a dead owner landed back on this node.
func (s *server) routeKeyed(w http.ResponseWriter, r *http.Request, key string) bool {
	c := s.cluster
	if c == nil || r.Header.Get(headerForwarded) != "" {
		return false
	}
	owner, ok := c.ring.Owner(key, c.health.Alive)
	if !ok || owner == c.self {
		return false
	}
	return c.forward(w, r, key, owner, "")
}

// forward proxies the request to target, rerouting around peers that fail at
// the transport (each failure marks the peer down, so the ring walk lands on
// the next successor). It returns false when rerouting lands on this node —
// the body has been restored and the caller should serve locally.
func (c *cluster) forward(w http.ResponseWriter, r *http.Request, key, target, pin string) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.maxBody))
	if err != nil {
		writeAPIError(w, badRequestf("reading request: %v", err))
		return true
	}
	for {
		err := c.forwardOnce(w, r, body, target, pin)
		if err == nil {
			return true
		}
		c.health.MarkDown(target)
		obsForwardErrors.With(target).Inc()
		c.log.Warn("peer unreachable; rerouting", "peer", target, "key", key, "error", err)
		next, ok := c.ring.Owner(key, c.health.Alive)
		if !ok || next == target {
			writeAPIError(w, &apiError{Status: http.StatusBadGateway, Code: codePeerUnreachable,
				Message: fmt.Sprintf("owner %s unreachable and no live successor", target)})
			return true
		}
		if next == c.self {
			r.Body = io.NopCloser(bytes.NewReader(body))
			return false
		}
		target = next
	}
}

// forwardOnce is one proxy round trip. It writes the response only after the
// exchange succeeded, so a transport failure leaves the ResponseWriter
// untouched and the caller free to reroute.
func (c *cluster) forwardOnce(w http.ResponseWriter, r *http.Request, body []byte, target, pin string) error {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	// The hop is a child span of the request, and its traceparent rides the
	// proxied request, so the owner's root span joins this trace.
	ctx, fsp := obs.StartSpan(r.Context(), "forward")
	fsp.SetAttr("peer", target)
	defer fsp.End()
	req, err := http.NewRequestWithContext(ctx, r.Method, target+r.URL.RequestURI(), rd)
	if err != nil {
		fsp.SetError(err.Error())
		return err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	// Propagate the correlation ID withObs already stamped on the response,
	// so one request keeps one ID across every hop's logs.
	if rid := w.Header().Get(requestIDHeader); rid != "" {
		req.Header.Set(requestIDHeader, rid)
	}
	if tp := fsp.TraceContext().Traceparent(); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	req.Header.Set(headerForwarded, c.self)
	if pin != "" {
		req.Header.Set(headerPinnedID, pin)
	}
	resp, err := c.proxy.Do(req)
	if err != nil {
		fsp.SetError(err.Error())
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	obsForwarded.With(target).Inc()
	return nil
}

// pinnedID returns the creation ID a forwarded create pinned, if any. The
// pin is honored only on requests that carry the forwarded header: external
// clients cannot choose their own IDs.
func pinnedID(r *http.Request) string {
	if r.Header.Get(headerForwarded) == "" {
		return ""
	}
	id := r.Header.Get(headerPinnedID)
	if len(id) > 64 || strings.ContainsAny(id, "/%\\") {
		return ""
	}
	return id
}

// newJobID mirrors the job manager's 16-byte random hex IDs for cluster
// submissions, where the ID must exist before enqueue so placement can route
// the create to the ID's owner.
func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("pland: reading random job ID: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// planKey canonicalizes a plan request into its fleet-cache key: problem,
// capacity, and the size multiset(s), independent of input order (and of the
// X/Y side labels, which the planner also treats symmetrically). The timeout
// is deliberately not part of the key, matching the node-local canonical
// cache: an already-solved isomorphic instance is served as solved. The key
// is a 128-bit FNV-1a of the canonical string, so collisions are negligible
// and the key is URL- and ring-friendly.
func planKey(body planRequest) (string, bool) {
	var b strings.Builder
	writeSide := func(sizes []assign.Size) string {
		sorted := append([]assign.Size(nil), sizes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sb strings.Builder
		for i, sz := range sorted {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatInt(int64(sz), 10))
		}
		return sb.String()
	}
	switch strings.ToLower(body.Problem) {
	case "a2a":
		if len(body.Sizes) == 0 {
			return "", false
		}
		fmt.Fprintf(&b, "a2a|%d|%s", body.Capacity, writeSide(body.Sizes))
	case "x2y":
		if len(body.XSizes) == 0 || len(body.YSizes) == 0 {
			return "", false
		}
		x, y := writeSide(body.XSizes), writeSide(body.YSizes)
		if x > y {
			x, y = y, x
		}
		fmt.Fprintf(&b, "x2y|%d|%s|%s", body.Capacity, x, y)
	default:
		return "", false
	}
	h := fnv.New128a()
	_, _ = io.WriteString(h, b.String())
	return "p-" + hex.EncodeToString(h.Sum(nil)), true
}

// planFleet is handlePlan's solve path under clustering: the canonical key's
// ring owner holds the one fleet-wide cache shard for the instance, so the
// probe goes there before this node spends a solve, and the solved result is
// published back there afterwards. Cold solves always run locally — only
// cache traffic crosses the wire — and every fleet failure degrades to the
// single-node path.
func (s *server) planFleet(ctx context.Context, body planRequest) (*planResponse, *apiError) {
	c := s.cluster
	key, keyed := "", false
	if c != nil && !body.NoCache {
		key, keyed = planKey(body)
	}
	if !keyed {
		return s.runPlan(ctx, body, s.cfg.MaxTimeout)
	}
	owner, ok := c.ring.Owner(key, c.health.Alive)
	if !ok {
		return s.runPlan(ctx, body, s.cfg.MaxTimeout)
	}
	if owner == c.self {
		if raw, hit := c.cache.Get(key); hit {
			if resp := decodeCached(raw); resp != nil {
				return resp, nil
			}
		}
		resp, aerr := s.runPlan(ctx, body, s.cfg.MaxTimeout)
		if aerr == nil {
			if raw, err := marshalCached(resp); err == nil {
				c.cache.Put(key, raw)
			}
		}
		return resp, aerr
	}
	cctx, csp := obs.StartSpan(ctx, "fleet_cache_get")
	csp.SetAttr("peer", owner)
	raw, err := c.clients[owner].FleetCacheGet(cctx, key)
	if err != nil {
		csp.SetError(err.Error())
	}
	csp.End()
	switch {
	case err != nil:
		obsFleetProbes.With("error").Inc()
		if plandclient.IsCode(err, plandclient.CodeTransport) {
			c.health.MarkDown(owner)
		}
	case raw != nil:
		if resp := decodeCached(raw); resp != nil {
			obsFleetProbes.With("hit").Inc()
			return resp, nil
		}
		obsFleetProbes.With("error").Inc()
	default:
		obsFleetProbes.With("miss").Inc()
	}
	resp, aerr := s.runPlan(ctx, body, s.cfg.MaxTimeout)
	if aerr == nil && err == nil {
		if raw, merr := marshalCached(resp); merr == nil {
			// Capture the request's trace identity now: the publish outlives
			// the request context but should still correlate on the peer.
			tc, _ := obs.TraceContextFrom(ctx)
			go c.publish(owner, key, raw, obs.RequestID(ctx), tc)
		}
	}
	return resp, aerr
}

// marshalCached and decodeCached are the fleet-cache value codec: the full
// planResponse JSON, with the hit flag stamped on the way out.
func marshalCached(resp *planResponse) ([]byte, error) {
	cp := *resp
	cp.FleetCacheHit = false
	return json.Marshal(cp)
}

func decodeCached(raw []byte) *planResponse {
	var resp planResponse
	if err := json.Unmarshal(raw, &resp); err != nil || resp.Schema == nil {
		return nil
	}
	resp.FleetCacheHit = true
	return &resp
}

// publish ships a freshly solved result to the key owner's cache shard,
// detached from the request that solved it but still carrying its request ID
// and trace context so the peer's logs correlate back to the solving request.
func (c *cluster) publish(owner, key string, raw []byte, rid string, tc obs.TraceContext) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if rid == "" {
		rid = obs.NewRequestID()
	}
	ctx = obs.WithRequestID(ctx, rid)
	ctx = obs.WithTraceContext(ctx, tc)
	if err := c.clients[owner].FleetCachePut(ctx, key, raw); err != nil {
		c.log.Warn("fleet cache publish failed", "peer", owner, "error", err, "request_id", rid)
	}
}

// handleFleetCache serves GET and PUT /internal/cache/{key}: this node's
// shard of the fleet plan cache. Values are opaque JSON documents; ownership
// is the caller's concern (peers only probe keys this node owns).
func (s *server) handleFleetCache(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeAPIError(w, notFound("not clustered"))
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/internal/cache/")
	if key == "" || strings.Contains(key, "/") {
		writeAPIError(w, notFound("no such cache key"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		raw, ok := s.cluster.cache.Get(key)
		if !ok {
			writeAPIError(w, notFound("cache miss"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw)
	case http.MethodPut:
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeAPIError(w, badRequestf("reading cache value: %v", err))
			return
		}
		if !json.Valid(raw) {
			writeAPIError(w, badRequestf("cache value is not valid JSON"))
			return
		}
		s.cluster.cache.Put(key, raw)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeAPIError(w, methodNotAllowed("GET or PUT"))
	}
}

// handoffRequest mirrors plandclient.HandoffRequest on the receiving side.
type handoffRequest struct {
	ID          string               `json:"id"`
	State       *assign.SessionState `json:"state"`
	Fingerprint string               `json:"fingerprint"`
	Meta        json.RawMessage      `json:"meta,omitempty"`
}

type handoffResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Inputs      int    `json:"inputs"`
}

// handleHandoff serves POST /internal/handoff: a draining peer ships one
// live session here. The state's fingerprint is recomputed and checked
// against the sender's stamp before anything is installed — a corrupt
// transfer is refused, never served — and a durable receiver immediately
// re-anchors the session in its own WAL. Handoffs are accepted even past
// -max-sessions: refusing would drop live client state to enforce a soft
// capacity bound.
func (s *server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, methodNotAllowed("POST"))
		return
	}
	var body handoffRequest
	if aerr := s.decodeBody(w, r, &body); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if body.ID == "" || body.State == nil {
		writeAPIError(w, badRequestf("handoff needs an id and a state"))
		return
	}
	want, err := strconv.ParseUint(body.Fingerprint, 16, 64)
	if err != nil {
		writeAPIError(w, badRequestf("fingerprint %q is not hex: %v", body.Fingerprint, err))
		return
	}
	if got := body.State.Fingerprint(); got != want {
		obsHandoffs.With("refused").Inc()
		writeAPIError(w, &apiError{Status: http.StatusUnprocessableEntity, Code: codeUnprocessable,
			Message: fmt.Sprintf("handoff fingerprint mismatch: sender stamped %016x, state is %016x", want, got)})
		return
	}
	s.sessMu.Lock()
	_, dup := s.sessions[body.ID]
	s.sessMu.Unlock()
	if dup {
		obsHandoffs.With("refused").Inc()
		writeAPIError(w, &apiError{Status: http.StatusConflict, Code: codeConflict,
			Message: fmt.Sprintf("session %s already lives here", body.ID)})
		return
	}
	entry, err := s.installSession(body.ID, body.State, nil, body.Meta)
	if err != nil {
		obsHandoffs.With("refused").Inc()
		writeAPIError(w, &apiError{Status: http.StatusUnprocessableEntity, Code: codeUnprocessable,
			Message: fmt.Sprintf("restoring handed-off session: %v", err)})
		return
	}
	if s.wal != nil {
		if err := entry.sess.WriteSnapshot(); err != nil {
			s.log.Warn("handed-off session not yet journaled", "session", body.ID, "error", err)
		}
	}
	obsHandoffs.With("received").Inc()
	s.log.Info("session handed off here", "session", body.ID, "inputs", entry.sess.Len())
	writeJSON(w, http.StatusCreated, handoffResponse{
		ID:          body.ID,
		Fingerprint: fmt.Sprintf("%016x", want),
		Inputs:      entry.sess.Len(),
	})
}

// handoffSessions ships every live session to its ring successor during a
// graceful drain. A session whose handoff fails stays registered — the final
// WAL checkpoint keeps it, so a later restart of this node still recovers
// it; only acknowledged transfers are closed and marked closed in the WAL so
// the restart cannot resurrect a session now served elsewhere.
func (s *server) handoffSessions(ctx context.Context) {
	c := s.cluster
	if c == nil {
		return
	}
	s.sessMu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.sessMu.Unlock()
	for _, e := range entries {
		target, ok := c.ring.Successor(e.id, c.self, c.health.Alive)
		if !ok {
			obsHandoffs.With("send_failed").Inc()
			s.log.Warn("no live successor; session stays in the WAL", "session", e.id)
			continue
		}
		st := e.sess.State()
		if st == nil {
			obsHandoffs.With("send_failed").Inc()
			s.log.Warn("session state unavailable; not handed off", "session", e.id)
			continue
		}
		req := plandclient.HandoffRequest{
			ID:          e.id,
			State:       st,
			Fingerprint: fmt.Sprintf("%016x", st.Fingerprint()),
			Meta:        e.meta,
		}
		if _, err := c.clients[target].Handoff(ctx, req); err != nil {
			obsHandoffs.With("send_failed").Inc()
			s.log.Warn("handoff failed; session stays in the WAL",
				"session", e.id, "peer", target, "error", err)
			continue
		}
		obsHandoffs.With("sent").Inc()
		s.log.Info("session handed off", "session", e.id, "peer", target, "inputs", e.sess.Len())
		s.sessMu.Lock()
		delete(s.sessions, e.id)
		s.sessMu.Unlock()
		s.cancelRebuild(e)
		e.sess.Close()
		s.journalSessionClose(ctx, e.id)
	}
}

// handleReadyz serves GET /readyz: readiness, as opposed to /healthz's
// liveness. It answers 503 both before boot recovery finished and from the
// moment a drain starts, which is what peers probe and what steers forwarded
// traffic away from a node that is about to stop serving.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "starting")
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	default:
		fmt.Fprintln(w, "ok")
	}
}

// startDrain flips readiness off; probes see 503 from here on while the
// listener keeps serving through the drain grace and handoff.
func (s *server) startDrain() { s.draining.Store(true) }

// clusterStats is the cluster block of GET /v1/stats.
type clusterStats struct {
	Self              string          `json:"self"`
	Nodes             []string        `json:"nodes"`
	Peers             map[string]bool `json:"peers"`
	FleetCacheEntries int             `json:"fleet_cache_entries"`
}

func (c *cluster) stats() *clusterStats {
	return &clusterStats{
		Self:              c.self,
		Nodes:             c.ring.Nodes(),
		Peers:             c.health.Snapshot(),
		FleetCacheEntries: c.cache.Len(),
	}
}
