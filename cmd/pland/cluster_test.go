package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

// newTestCluster boots n in-process pland nodes wired into one ring. Health
// probing is not started: every peer reads alive, which is the steady state
// the routing tests want (liveness transitions are internal/shard's tests).
func newTestCluster(t *testing.T, n int) ([]*server, []*httptest.Server) {
	t.Helper()
	servers := make([]*server, n)
	httpSrvs := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{})
		httpSrvs[i] = httptest.NewServer(servers[i])
		urls[i] = httpSrvs[i].URL
	}
	t.Cleanup(func() {
		for i := range servers {
			httpSrvs[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			servers[i].Close(ctx)
			cancel()
		}
	})
	for i, s := range servers {
		cfg := s.cfg
		cfg.Self = urls[i]
		cfg.Peers = urls
		cl, err := newCluster(cfg, s.log)
		if err != nil {
			t.Fatalf("newCluster(%d): %v", i, err)
		}
		s.cluster = cl
	}
	return servers, httpSrvs
}

// nodeIndex maps an advertised URL back to its index in the test fleet.
func nodeIndex(t *testing.T, urls []*httptest.Server, node string) int {
	t.Helper()
	for i, u := range urls {
		if u.URL == node {
			return i
		}
	}
	t.Fatalf("node %q is not in the fleet", node)
	return -1
}

// TestClusterSessionPlacementAndRouting: a create through any node lands on
// the ID's ring owner, every node serves GETs for it (forwarding when it is
// not the owner), and a DELETE through a non-owner tears it down fleet-wide.
func TestClusterSessionPlacementAndRouting(t *testing.T) {
	servers, httpSrvs := newTestCluster(t, 3)
	ctx := context.Background()
	c0 := plandclient.New(httpSrvs[0].URL)

	sess, err := c0.CreateSession(ctx, plandclient.SessionCreateRequest{Capacity: 10, Sizes: []assign.Size{3, 4, 5}})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.Node == "" || sess.Fingerprint == "" {
		t.Fatalf("clustered create missing node/fingerprint: %+v", sess)
	}
	wantOwner := servers[0].cluster.ring.Lookup(sess.ID)
	if sess.Node != wantOwner {
		t.Fatalf("session placed on %s, ring owner is %s", sess.Node, wantOwner)
	}
	ownerIdx := nodeIndex(t, httpSrvs, sess.Node)
	servers[ownerIdx].sessMu.Lock()
	_, present := servers[ownerIdx].sessions[sess.ID]
	servers[ownerIdx].sessMu.Unlock()
	if !present {
		t.Fatalf("session %s not registered on its owner %s", sess.ID, sess.Node)
	}

	// Every node answers a GET for it, with an identical fingerprint.
	for i, hs := range httpSrvs {
		got, err := plandclient.New(hs.URL).GetSession(ctx, sess.ID)
		if err != nil {
			t.Fatalf("GetSession via node %d: %v", i, err)
		}
		if got.Node != sess.Node || got.Fingerprint != sess.Fingerprint {
			t.Fatalf("node %d sees node=%s fp=%s, want node=%s fp=%s",
				i, got.Node, got.Fingerprint, sess.Node, sess.Fingerprint)
		}
	}

	// Delete through a node that is NOT the owner; the forward must apply it.
	otherIdx := (ownerIdx + 1) % len(httpSrvs)
	if _, err := plandclient.New(httpSrvs[otherIdx].URL).DeleteSession(ctx, sess.ID); err != nil {
		t.Fatalf("DeleteSession via non-owner: %v", err)
	}
	if _, err := c0.GetSession(ctx, sess.ID); !plandclient.IsCode(err, plandclient.CodeNotFound) {
		t.Fatalf("deleted session still reachable: %v", err)
	}
}

// TestClusterJobRouting: a v2 job submitted through any node runs on its
// ID's owner and is pollable through every node.
func TestClusterJobRouting(t *testing.T) {
	servers, httpSrvs := newTestCluster(t, 3)
	ctx := context.Background()

	job, err := plandclient.New(httpSrvs[0].URL).SubmitPlan(ctx, plandclient.PlanRequest{
		Problem: "A2A", Capacity: 10, Sizes: []assign.Size{3, 3, 2, 2, 4, 1},
	})
	if err != nil {
		t.Fatalf("SubmitPlan: %v", err)
	}
	owner := servers[0].cluster.ring.Lookup(job.ID)
	ownerIdx := nodeIndex(t, httpSrvs, owner)
	if _, err := servers[ownerIdx].jobs.Get(job.ID); err != nil {
		t.Fatalf("job %s not on its owner %s: %v", job.ID, owner, err)
	}
	for i, hs := range httpSrvs {
		final, err := plandclient.New(hs.URL).WaitJob(ctx, job.ID, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("WaitJob via node %d: %v", i, err)
		}
		if final.State != plandclient.StateSucceeded {
			t.Fatalf("job ended %s via node %d", final.State, i)
		}
	}
}

// TestClusterHandoff: a draining node ships its sessions to their ring
// successor; the receiver serves them with an identical fingerprint and the
// rest of the fleet routes to the new home.
func TestClusterHandoff(t *testing.T) {
	servers, httpSrvs := newTestCluster(t, 3)
	ctx := context.Background()

	sess, err := plandclient.New(httpSrvs[0].URL).CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 20, Sizes: []assign.Size{5, 3, 7, 2},
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	ownerIdx := nodeIndex(t, httpSrvs, sess.Node)
	ownerSrv := servers[ownerIdx]
	wantSuccessor, ok := ownerSrv.cluster.ring.Successor(sess.ID, ownerSrv.cluster.self, ownerSrv.cluster.health.Alive)
	if !ok {
		t.Fatal("no successor in a 3-node ring")
	}

	ownerSrv.startDrain()
	ownerSrv.handoffSessions(ctx)
	// In production the drain grace exists so peers' readiness probes see the
	// 503 and mark the node down before it stops serving; the tests don't run
	// probe loops, so apply that transition by hand.
	for _, s := range servers {
		s.cluster.health.MarkDown(sess.Node)
	}

	ownerSrv.sessMu.Lock()
	left := len(ownerSrv.sessions)
	ownerSrv.sessMu.Unlock()
	if left != 0 {
		t.Fatalf("%d sessions still on the drained node", left)
	}
	succIdx := nodeIndex(t, httpSrvs, wantSuccessor)
	servers[succIdx].sessMu.Lock()
	_, present := servers[succIdx].sessions[sess.ID]
	servers[succIdx].sessMu.Unlock()
	if !present {
		t.Fatalf("session %s did not land on successor %s", sess.ID, wantSuccessor)
	}

	// A third node still reaches it; the fingerprint survived the transfer.
	thirdIdx := 3 - ownerIdx - succIdx
	got, err := plandclient.New(httpSrvs[thirdIdx].URL).GetSession(ctx, sess.ID)
	if err != nil {
		t.Fatalf("GetSession after handoff: %v", err)
	}
	if got.Fingerprint != sess.Fingerprint {
		t.Fatalf("fingerprint changed across handoff: %s -> %s", sess.Fingerprint, got.Fingerprint)
	}
	if got.Node != wantSuccessor {
		t.Fatalf("session served by %s, want successor %s", got.Node, wantSuccessor)
	}

	// The handed-off session is live, not a read-only copy.
	if _, err := plandclient.New(httpSrvs[succIdx].URL).UpdateSession(ctx, sess.ID, plandclient.AddDelta(4)); err != nil {
		t.Fatalf("UpdateSession on successor: %v", err)
	}
}

// TestHandoffFingerprintVerification: the receiver recomputes the state
// fingerprint and refuses a mismatched transfer; a duplicate ID conflicts.
func TestHandoffFingerprintVerification(t *testing.T) {
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{})
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	ctx := context.Background()

	donor, err := s.planner.NewSession(ctx, assign.Capacity(10), assign.A2A([]assign.Size{3, 4}), assign.ManualRebuild())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer donor.Close()
	st := donor.State()

	post := func(id, fp string) *http.Response {
		t.Helper()
		body, err := json.Marshal(handoffRequest{ID: id, State: st, Fingerprint: fp})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/internal/handoff", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Wrong fingerprint: refused, nothing installed.
	resp := post("s-bad", "deadbeef")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched fingerprint accepted: HTTP %d", resp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, resp); code != codeUnprocessable {
		t.Fatalf("error code = %s", code)
	}

	// Correct fingerprint: installed and served.
	good := fmt.Sprintf("%016x", st.Fingerprint())
	resp = post("s-handoff", good)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("valid handoff refused: HTTP %d", resp.StatusCode)
	}
	var out handoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint != good || out.Inputs != 2 {
		t.Fatalf("handoff ack = %+v", out)
	}

	// Same ID again: conflict, the live session is not clobbered.
	resp = post("s-handoff", good)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate handoff got HTTP %d, want 409", resp.StatusCode)
	}
}

// TestReadyzLifecycle: /readyz is 200 only between boot-recovery completion
// and the start of a drain; /healthz stays 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), serverConfig{})
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d", got)
	}
	s.ready.Store(false) // as during boot recovery
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("recovering server /readyz = %d, want 503", got)
	}
	s.ready.Store(true)
	s.startDrain()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining server /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("draining server /healthz = %d, want 200 (liveness, not readiness)", got)
	}
}

// TestFleetPlanCache: one node's solve serves the whole fleet. The canonical
// key's owner holds the cache shard; a solve elsewhere publishes to it, and
// later isomorphic requests — through any node — come back as fleet hits.
func TestFleetPlanCache(t *testing.T) {
	servers, httpSrvs := newTestCluster(t, 3)
	ctx := context.Background()

	req := plandclient.PlanRequest{Problem: "A2A", Capacity: 10, Sizes: []assign.Size{3, 3, 2, 2, 4, 1}}
	key, ok := planKey(planRequest{Problem: req.Problem, Capacity: req.Capacity, Sizes: req.Sizes})
	if !ok {
		t.Fatal("planKey rejected a valid request")
	}
	owner := servers[0].cluster.ring.Lookup(key)
	ownerIdx := nodeIndex(t, httpSrvs, owner)
	solverIdx := (ownerIdx + 1) % len(httpSrvs) // deliberately not the owner

	first, err := plandclient.New(httpSrvs[solverIdx].URL).Plan(ctx, req)
	if err != nil {
		t.Fatalf("Plan on non-owner: %v", err)
	}
	if first.FleetCacheHit {
		t.Fatal("first solve reported a fleet cache hit")
	}

	// The publish to the owner's shard is asynchronous; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for servers[ownerIdx].cluster.cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solved result never reached the owner's cache shard")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An isomorphic instance (same multiset, different order) through the
	// owner and through a third node must both be fleet hits now.
	iso := req
	iso.Sizes = []assign.Size{1, 4, 2, 2, 3, 3}
	for _, idx := range []int{ownerIdx, (ownerIdx + 2) % len(httpSrvs)} {
		got, err := plandclient.New(httpSrvs[idx].URL).Plan(ctx, iso)
		if err != nil {
			t.Fatalf("Plan via node %d: %v", idx, err)
		}
		if !got.FleetCacheHit {
			t.Fatalf("node %d solved instead of serving the fleet cache", idx)
		}
		if got.Reducers != first.Reducers || got.Communication != first.Communication {
			t.Fatalf("fleet-cached result diverged: %+v vs %+v", got, first)
		}
	}

	// NoCache opts out of the fleet layer entirely.
	nc := req
	nc.NoCache = true
	got, err := plandclient.New(httpSrvs[ownerIdx].URL).Plan(ctx, nc)
	if err != nil {
		t.Fatalf("Plan with NoCache: %v", err)
	}
	if got.FleetCacheHit {
		t.Fatal("no_cache request served from the fleet cache")
	}
}

// TestForwardReroutesAroundDeadPeer: when a keyed request's owner is dead,
// the hop guard plus the shared ring walk land the request on the successor
// — the same node a drain would have handed the key to.
func TestForwardReroutesAroundDeadPeer(t *testing.T) {
	servers, httpSrvs := newTestCluster(t, 3)
	ctx := context.Background()

	sess, err := plandclient.New(httpSrvs[0].URL).CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 10, Sizes: []assign.Size{2, 3},
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	ownerIdx := nodeIndex(t, httpSrvs, sess.Node)
	otherIdx := (ownerIdx + 1) % len(httpSrvs)

	// Kill the owner's listener. The next GET through another node marks the
	// owner down on the transport failure and reroutes to the successor,
	// which answers 404 — the session died with its node (it was in-memory);
	// what matters here is a clean envelope, not a hang or a 502 loop.
	httpSrvs[ownerIdx].CloseClientConnections()
	httpSrvs[ownerIdx].Close()
	_, err = plandclient.New(httpSrvs[otherIdx].URL).GetSession(ctx, sess.ID)
	if err == nil {
		t.Fatal("GET for a dead node's session succeeded")
	}
	if !plandclient.IsCode(err, plandclient.CodeNotFound) && !plandclient.IsCode(err, plandclient.CodePeerUnreachable) {
		t.Fatalf("unexpected failure shape: %v", err)
	}
	if alive := servers[otherIdx].cluster.health.Alive(httpSrvs[ownerIdx].URL); alive {
		t.Fatal("transport failure did not mark the dead owner down")
	}
}
