package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/pkg/assign"
)

// sessionEntry is one live session of the v2 API plus its rebuild-job
// bookkeeping. entry.mu serializes PATCH batches and rebuild scheduling;
// the session itself is internally synchronized.
type sessionEntry struct {
	id   string
	sess *assign.Session
	// meta is the marshaled sessionMeta this session was created (or
	// restored) with; drain handoff ships it alongside the state so the
	// receiver rebuilds the session with the same replan shaping.
	meta json.RawMessage

	mu         sync.Mutex
	rebuildJob string // last submitted rebuild job ID, "" when none
}

// sessionCreateRequest is the JSON body of POST /v2/sessions.
type sessionCreateRequest struct {
	// Capacity is the reducer capacity q. Required.
	Capacity assign.Size `json:"capacity"`
	// Sizes optionally seeds the session with an initial A2A instance,
	// planned once through the portfolio before the session goes live.
	Sizes []assign.Size `json:"sizes,omitempty"`
	// MigrationBudget, RebuildThreshold, and Headroom tune the maintenance
	// layer; zero keeps each default (see pkg/assign).
	MigrationBudget  assign.Size `json:"migration_budget,omitempty"`
	RebuildThreshold float64     `json:"rebuild_threshold,omitempty"`
	Headroom         assign.Size `json:"headroom,omitempty"`
	// TimeoutMS and NoCache shape the session's replans exactly as in
	// /v1/plan; a negative TimeoutMS requests deterministic await-all mode.
	TimeoutMS int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
}

// sessionDelta is one delta of a PATCH batch.
type sessionDelta struct {
	// Op is "add", "remove", or "resize".
	Op string `json:"op"`
	// Size is the input size for "add" and the new size for "resize".
	Size assign.Size `json:"size,omitempty"`
	// ID addresses the input for "remove" and "resize".
	ID *int `json:"id,omitempty"`
}

// sessionPatchRequest is the JSON body of PATCH /v2/sessions/{id}.
type sessionPatchRequest struct {
	Deltas []sessionDelta `json:"deltas"`
}

// sessionDeltaResult reports one applied (or failed) delta.
type sessionDeltaResult struct {
	assign.DeltaReport
	Error *apiError `json:"error,omitempty"`
}

// sessionPatchResponse is the answer of a PATCH: per-delta results in order
// (processing stops at the first failure), the session's stats afterwards,
// and the rebuild job this batch scheduled, if any.
type sessionPatchResponse struct {
	Applied      int                  `json:"applied"`
	Results      []sessionDeltaResult `json:"results"`
	Stats        assign.SessionStats  `json:"stats"`
	RebuildJobID string               `json:"rebuild_job_id,omitempty"`
}

// sessionResponse is the JSON view of one session.
type sessionResponse struct {
	ID    string              `json:"id"`
	Stats assign.SessionStats `json:"stats"`
	// Schema, IDs, and Sizes are the consistent snapshot (GET and create
	// only). IDs maps the schema's dense input indexes to the session's
	// stable input IDs.
	Schema *assign.MappingSchema `json:"schema,omitempty"`
	IDs    []int                 `json:"ids,omitempty"`
	Sizes  []assign.Size         `json:"sizes,omitempty"`
	// RebuildJobID is the in-flight or last-submitted rebuild job; poll it
	// via GET /v2/jobs/{id}.
	RebuildJobID string `json:"rebuild_job_id,omitempty"`
	// Node is the cluster node serving this session (clustered servers only).
	// Fingerprint is the hex state fingerprint of the snapshot this view came
	// from (schema views only): equal fingerprints mean replay-identical
	// sessions, which is how the cluster e2e asserts a handed-off session
	// survived a node's death intact.
	Node        string `json:"node,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// sessionListResponse is the answer of GET /v2/sessions.
type sessionListResponse struct {
	Sessions []sessionResponse `json:"sessions"`
	Count    int               `json:"count"`
	Limit    int               `json:"limit"`
}

// newSessionID returns a 8-byte random hex session ID.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("pland: reading random session ID: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// handleSessions serves POST (create) and GET (list) /v2/sessions.
func (s *server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.createSession(w, r)
	case http.MethodGet:
		s.listSessions(w)
	default:
		writeAPIError(w, methodNotAllowed("POST or GET"))
	}
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	// The ID is drawn before anything else: under clustering it decides the
	// owning node (the create is forwarded there with the ID pinned), and the
	// journal needs it to stamp the very first snapshot (NewSession journals
	// one as the session goes live).
	id := pinnedID(r)
	if id == "" {
		id = newSessionID()
		if c := s.cluster; c != nil && r.Header.Get(headerForwarded) == "" {
			if owner, ok := c.ring.Owner(id, c.health.Alive); ok && owner != c.self {
				if c.forward(w, r, id, owner, id) {
					return
				}
			}
		}
	}
	var body sessionCreateRequest
	if aerr := s.decodeBody(w, r, &body); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if body.Capacity <= 0 {
		writeAPIError(w, badRequestf("capacity must be positive, got %d", body.Capacity))
		return
	}
	if len(body.Sizes) > s.cfg.MaxSessionInputs {
		writeAPIError(w, badRequestf("initial instance has %d inputs, session limit is %d",
			len(body.Sizes), s.cfg.MaxSessionInputs))
		return
	}
	if len(body.Sizes) > 0 {
		if aerr := validSizes("sizes", body.Sizes); aerr != nil {
			writeAPIError(w, aerr)
			return
		}
	}
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		writeAPIError(w, &apiError{Status: http.StatusTooManyRequests, Code: codeSessionLimit,
			Message: fmt.Sprintf("session limit (%d) reached; DELETE one first", s.cfg.MaxSessions)})
		return
	}
	s.sessMu.Unlock()

	opts := []assign.Option{
		assign.Capacity(body.Capacity),
		assign.ManualRebuild(), // rebuilds run on the shared job queue
		assign.MigrationBudget(body.MigrationBudget),
		assign.RebuildThreshold(body.RebuildThreshold),
		assign.Headroom(body.Headroom),
		assign.Timeout(requestBudget(body.TimeoutMS, s.cfg.DefaultTimeout, s.cfg.MaxJobTimeout)),
	}
	if len(body.Sizes) > 0 {
		opts = append(opts, assign.A2A(body.Sizes))
	}
	if body.NoCache {
		opts = append(opts, assign.NoCache())
	}
	// The meta blob rides with every journaled snapshot and with a drain
	// handoff; it is computed even without a WAL so a clustered in-memory
	// node hands sessions off with their replan shaping intact.
	meta, err := json.Marshal(sessionMeta{TimeoutMS: body.TimeoutMS, NoCache: body.NoCache})
	if err != nil {
		writeAPIError(w, badRequestf("encoding session meta: %v", err))
		return
	}
	if s.wal != nil {
		opts = append(opts, assign.Journal(&sessionJournal{sid: id, meta: meta, log: s.wal}))
	}
	// The initial plan runs synchronously under the request budget.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	sess, err := s.planner.NewSession(ctx, opts...)
	if err != nil {
		writeAPIError(w, planError(err))
		return
	}

	entry := &sessionEntry{id: id, sess: sess, meta: meta}
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions { // re-check: creations may race
		s.sessMu.Unlock()
		sess.Close()
		// NewSession already journaled the initial snapshot; without a close
		// record recovery would resurrect this never-served session.
		s.journalSessionClose(r.Context(), id)
		writeAPIError(w, &apiError{Status: http.StatusTooManyRequests, Code: codeSessionLimit,
			Message: fmt.Sprintf("session limit (%d) reached; DELETE one first", s.cfg.MaxSessions)})
		return
	}
	s.sessions[entry.id] = entry
	s.sessMu.Unlock()
	writeJSON(w, http.StatusCreated, s.sessionView(entry, true))
}

func (s *server) listSessions(w http.ResponseWriter) {
	s.sessMu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	limit := s.cfg.MaxSessions
	s.sessMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	node := ""
	if s.cluster != nil {
		node = s.cluster.self
	}
	resp := sessionListResponse{Sessions: make([]sessionResponse, 0, len(entries)), Count: len(entries), Limit: limit}
	for _, e := range entries {
		resp.Sessions = append(resp.Sessions, sessionResponse{ID: e.id, Stats: e.sess.Stats(), RebuildJobID: s.activeRebuild(e), Node: node})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSession serves GET, PATCH, and DELETE /v2/sessions/{id}.
func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v2/sessions/")
	if id == "" || strings.Contains(id, "/") {
		writeAPIError(w, notFound("no such session"))
		return
	}
	s.sessMu.Lock()
	entry := s.sessions[id]
	s.sessMu.Unlock()
	if entry == nil {
		// Not here: under clustering the ring says who serves it (a session
		// present locally — pinned here or handed off here — always serves
		// locally, so routing never bounces a live session away).
		if s.routeKeyed(w, r, id) {
			return
		}
		writeAPIError(w, notFound("no such session"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.sessionView(entry, true))
	case http.MethodPatch:
		s.patchSession(w, r, entry)
	case http.MethodDelete:
		s.sessMu.Lock()
		delete(s.sessions, id)
		s.sessMu.Unlock()
		stats := entry.sess.Stats()
		s.cancelRebuild(entry) // don't leave a zombie solve on the job queue
		entry.sess.Close()
		// The close record goes in only after Close: a checkpoint snapshot
		// either landed before it (superseded by the close) or hit ErrClosed,
		// so recovery can never resurrect a deleted session.
		s.journalSessionClose(r.Context(), id)
		writeJSON(w, http.StatusOK, sessionResponse{ID: entry.id, Stats: stats})
	default:
		writeAPIError(w, methodNotAllowed("GET, PATCH, or DELETE"))
	}
}

// patchSession applies a delta batch in order, stopping at the first
// failure, then schedules a background rebuild on the job queue when the
// batch pushed drift past the threshold.
func (s *server) patchSession(w http.ResponseWriter, r *http.Request, entry *sessionEntry) {
	var body sessionPatchRequest
	if aerr := s.decodeBody(w, r, &body); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if len(body.Deltas) == 0 {
		writeAPIError(w, badRequestf("no deltas in batch"))
		return
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	// The whole batch is one "delta" stage of the request span: per-delta
	// spans would let a large batch blow the span-children cap for no
	// diagnostic gain (the response already reports per-delta outcomes).
	endDelta := obs.SpanFrom(r.Context()).Stage("delta")
	resp := sessionPatchResponse{Results: make([]sessionDeltaResult, 0, len(body.Deltas))}
	for i, d := range body.Deltas {
		var (
			rep assign.DeltaReport
			err error
		)
		switch d.Op {
		case "add":
			if entry.sess.Len() >= s.cfg.MaxSessionInputs {
				err = fmt.Errorf("session holds %d inputs, limit is %d", entry.sess.Len(), s.cfg.MaxSessionInputs)
			} else {
				_, rep, err = entry.sess.Add(d.Size)
			}
		case "remove":
			if d.ID == nil {
				err = errors.New(`"remove" needs an "id"`)
			} else {
				rep, err = entry.sess.Remove(*d.ID)
			}
		case "resize":
			if d.ID == nil {
				err = errors.New(`"resize" needs an "id"`)
			} else {
				rep, err = entry.sess.Resize(*d.ID, d.Size)
			}
		default:
			err = fmt.Errorf(`delta %d: op must be "add", "remove", or "resize", got %q`, i, d.Op)
		}
		if err != nil {
			resp.Results = append(resp.Results, sessionDeltaResult{Error: deltaError(err)})
			break
		}
		resp.Applied++
		resp.Results = append(resp.Results, sessionDeltaResult{DeltaReport: rep})
	}
	endDelta()
	resp.RebuildJobID = s.maybeScheduleRebuild(r.Context(), entry)
	resp.Stats = entry.sess.Stats()
	writeJSON(w, http.StatusOK, resp)
}

// deltaError classifies a per-delta failure into the stable envelope codes.
func deltaError(err error) *apiError {
	switch {
	case errors.Is(err, assign.ErrUnknownID):
		return &apiError{Status: http.StatusNotFound, Code: codeNotFound, Message: err.Error(), cause: err}
	case errors.Is(err, assign.ErrSessionClosed):
		return &apiError{Status: http.StatusConflict, Code: codeConflict, Message: err.Error(), cause: err}
	default:
		return &apiError{Status: http.StatusUnprocessableEntity, Code: codeUnprocessable, Message: err.Error(), cause: err}
	}
}

// activeRebuild returns the entry's rebuild job ID while it is queued or
// running, clearing the bookkeeping once the job finished or expired.
func (s *server) activeRebuild(entry *sessionEntry) string {
	entry.mu.Lock()
	defer entry.mu.Unlock()
	return s.activeRebuildLocked(entry)
}

func (s *server) activeRebuildLocked(entry *sessionEntry) string {
	if entry.rebuildJob == "" {
		return ""
	}
	snap, err := s.jobs.Get(entry.rebuildJob)
	if err != nil || snap.State.Terminal() {
		entry.rebuildJob = ""
		return ""
	}
	return entry.rebuildJob
}

// maybeScheduleRebuild submits a "rebuild" job for the session when drift
// passed the threshold and no rebuild is already queued or running. The
// caller holds entry.mu via patchSession; list/GET paths go through
// activeRebuild instead. submitCtx is the PATCH's context — the rebuild's
// trace joins the batch that triggered it.
func (s *server) maybeScheduleRebuild(submitCtx context.Context, entry *sessionEntry) string {
	if id := s.activeRebuildLocked(entry); id != "" {
		return id
	}
	if !entry.sess.NeedsRebuild() {
		return ""
	}
	sess := entry.sess
	snap, err := s.jobs.Submit("rebuild", s.traceJobFunc("rebuild", submitCtx, func(ctx context.Context) (any, error) {
		jctx, cancel := context.WithTimeout(ctx, s.cfg.MaxJobTimeout)
		defer cancel()
		rep, err := sess.Rebuild(jctx)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}))
	if err != nil {
		// A full queue is not an error for the batch itself: the rebuild is
		// retried on a later PATCH.
		return ""
	}
	entry.rebuildJob = snap.ID
	return snap.ID
}

// sessionView renders a session, optionally with its schema snapshot.
func (s *server) sessionView(entry *sessionEntry, withSchema bool) sessionResponse {
	resp := sessionResponse{ID: entry.id, RebuildJobID: s.activeRebuild(entry)}
	if s.cluster != nil {
		resp.Node = s.cluster.self
	}
	if withSchema {
		snap := entry.sess.Snapshot()
		resp.Stats = snap.Stats
		resp.Schema = snap.Schema
		resp.IDs = snap.IDs
		resp.Sizes = snap.Sizes
		if st := entry.sess.State(); st != nil {
			resp.Fingerprint = fmt.Sprintf("%016x", st.Fingerprint())
		}
	} else {
		resp.Stats = entry.sess.Stats()
	}
	return resp
}

// cancelRebuild cancels the session's in-flight rebuild job, if any, so a
// deleted session's solve does not keep occupying a job worker until its
// own timeout. Best-effort: a job that already finished returns an error
// Cancel callers here can ignore.
func (s *server) cancelRebuild(entry *sessionEntry) {
	entry.mu.Lock()
	id := entry.rebuildJob
	entry.rebuildJob = ""
	entry.mu.Unlock()
	if id != "" {
		_, _ = s.jobs.Cancel(id)
	}
}

// closeSessions shuts every session down; used by the server drain.
func (s *server) closeSessions() {
	s.sessMu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for id, e := range s.sessions {
		entries = append(entries, e)
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	for _, e := range entries {
		s.cancelRebuild(e)
		e.sess.Close()
	}
}
