package main

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/pkg/assign"
)

// Recovery series: stamped once per boot (pland recovers exactly once, before
// serving), so the gauges read as "what the last recovery did".
var (
	obsRecoverySessions = obs.Default.Counter("pland_recovery_sessions_total",
		"Sessions restored from the WAL at boot.")
	obsRecoverySessionFailures = obs.Default.Counter("pland_recovery_session_failures_total",
		"Sessions in the WAL that failed fingerprint, replay, or audit and were dropped.")
	obsRecoveryJobs = obs.Default.Counter("pland_recovery_jobs_total",
		"Journaled-but-unfinished jobs re-enqueued at boot.")
	obsRecoveryJobFailures = obs.Default.Counter("pland_recovery_job_failures_total",
		"Journaled jobs whose payload no longer validated and were dropped.")
	obsRecoveryDeltas = obs.Default.Counter("pland_recovery_deltas_total",
		"Session deltas replayed on top of snapshots at boot.")
	obsRecoveryDurationMS = obs.Default.Gauge("pland_recovery_duration_ms",
		"Wall-clock milliseconds the boot recovery took.")
	obsRecoveryTornBytes = obs.Default.Gauge("pland_recovery_torn_bytes",
		"Bytes the boot recovery cut off at the first torn or corrupt WAL frame.")
)

// sessionMeta is the owner blob journaled with every session snapshot: the
// replan-shaping request fields that live outside stream state. Tuning
// (budget, headroom, threshold) travels inside the state itself.
type sessionMeta struct {
	TimeoutMS int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
}

// sessionJournal adapts one session's durability stream onto the shared WAL.
// Both methods run under the session's own mutex, so per-session records land
// in the log in exactly the order they applied; the WAL never calls back, so
// the session-then-log lock order cannot deadlock.
type sessionJournal struct {
	sid  string
	meta json.RawMessage
	log  *wal.Log
}

func (j *sessionJournal) Delta(rec assign.SessionDeltaRecord) {
	// The log's sticky error surfaces on /metrics; the session keeps serving.
	_ = j.log.Append(&wal.Record{Kind: wal.KindSessionDelta, SID: j.sid, Delta: &rec})
}

func (j *sessionJournal) Snapshot(st *assign.SessionState) {
	_ = j.log.Append(&wal.Record{
		Kind: wal.KindSessionSnapshot, SID: j.sid,
		State: st, FP: st.Fingerprint(), Meta: j.meta,
	})
}

// walJob is the server-side copy of one journaled job submission, kept so
// checkpoints can re-record still-live jobs into the barrier segment.
type walJob struct {
	kind string
	body json.RawMessage
}

// newDurableServer builds the server and, when DataDir is set, opens the WAL
// under it, recovers whatever a previous process journaled (verified and
// audited before anything is served), compacts the recovered log, and starts
// the checkpoint loop. With an empty DataDir it is exactly newServer.
func newDurableServer(pl *assign.Planner, cfg serverConfig) (*server, error) {
	s := newServer(pl, cfg)
	if len(s.cfg.Peers) > 0 {
		cl, err := newCluster(s.cfg, s.log)
		if err != nil {
			return nil, err
		}
		s.cluster = cl
	}
	if cfg.DataDir == "" {
		return s, nil
	}
	log, err := wal.Open(cfg.DataDir, wal.Options{Fsync: cfg.Fsync, FsyncInterval: cfg.FsyncInterval})
	if err != nil {
		return nil, err
	}
	s.wal = log
	if err := s.recoverWAL(); err != nil {
		log.Close()
		return nil, err
	}
	// Re-anchor the recovered state right away so the pre-crash segments are
	// dropped instead of being replayed again (and growing) on every boot.
	if err := s.checkpoint(); err != nil {
		s.log.Warn("post-recovery checkpoint", "error", err)
	}
	s.checkpointStop = make(chan struct{})
	s.checkpointWG.Add(1)
	go s.runCheckpointer()
	// Recovery is done and re-anchored: from here /readyz says so and peers
	// may route to this node.
	s.ready.Store(true)
	return s, nil
}

// recoverWAL replays the log and rebuilds the live sessions and unfinished
// jobs. Each session is fingerprint-checked against its journaled stamp and
// audited (pkg/assign runs the executor's conformance auditor over the
// restored schema) before it is served; a session that fails either check is
// dropped and counted rather than served wrong.
func (s *server) recoverWAL() error {
	start := time.Now()
	rec, err := s.wal.Recover()
	if err != nil {
		return err
	}
	obsRecoveryTornBytes.Set(rec.TornBytes)
	if rec.TornBytes > 0 {
		s.log.Warn("wal tail torn; later records lost", "torn_bytes", rec.TornBytes)
	}

	for _, rs := range rec.Sessions {
		if got := rs.State.Fingerprint(); got != rs.FP {
			obsRecoverySessionFailures.Inc()
			s.log.Warn("dropping session: snapshot fingerprint mismatch",
				"session", rs.SID, "want", rs.FP, "got", got)
			continue
		}
		entry, err := s.installSession(rs.SID, rs.State, rs.Deltas, rs.Meta)
		if err != nil {
			obsRecoverySessionFailures.Inc()
			s.log.Warn("dropping session: restore failed", "session", rs.SID, "error", err)
			continue
		}
		obsRecoverySessions.Inc()
		obsRecoveryDeltas.Add(uint64(len(rs.Deltas)))
		s.log.Info("session recovered", "session", rs.SID,
			"inputs", entry.sess.Len(), "deltas_replayed", len(rs.Deltas))
	}

	for _, rj := range rec.Jobs {
		var body jobSubmitRequest
		if err := json.Unmarshal(rj.Body, &body); err != nil {
			obsRecoveryJobFailures.Inc()
			s.log.Warn("dropping job: body unreadable", "job", rj.ID, "error", err)
			continue
		}
		run, aerr := s.buildJobFunc(body)
		if aerr != nil {
			obsRecoveryJobFailures.Inc()
			s.log.Warn("dropping job: payload no longer valid", "job", rj.ID, "error", aerr.Message)
			continue
		}
		// Recovered jobs have no submitting request; they root a fresh trace.
		run = s.traceJobFunc(rj.Kind, nil, run)
		if _, err := s.jobs.Restore(rj.ID, rj.Kind, run); err != nil {
			obsRecoveryJobFailures.Inc()
			s.log.Warn("dropping job: re-enqueue failed", "job", rj.ID, "error", err)
			continue
		}
		s.walMu.Lock()
		s.walJobs[rj.ID] = walJob{kind: rj.Kind, body: rj.Body}
		s.walMu.Unlock()
		obsRecoveryJobs.Inc()
		s.log.Info("job re-enqueued", "job", rj.ID, "kind", rj.Kind)
	}

	obsRecoveryDurationMS.Set(time.Since(start).Milliseconds())
	return nil
}

// installSession restores a serialized session under its existing ID and
// registers it for serving. Boot recovery and the cluster handoff receiver
// share it, so a session re-materializes with identical semantics whether it
// came out of this node's WAL or off the wire from a draining peer. The
// caller has already verified the state's fingerprint.
func (s *server) installSession(sid string, st *assign.SessionState, deltas []assign.SessionDeltaRecord, metaRaw json.RawMessage) (*sessionEntry, error) {
	var meta sessionMeta
	if len(metaRaw) > 0 {
		if err := json.Unmarshal(metaRaw, &meta); err != nil {
			s.log.Warn("session meta unreadable; using defaults", "session", sid, "error", err)
			metaRaw = nil
		}
	}
	opts := []assign.Option{
		assign.ManualRebuild(), // rebuilds run on the shared job queue
		assign.Timeout(requestBudget(meta.TimeoutMS, s.cfg.DefaultTimeout, s.cfg.MaxJobTimeout)),
	}
	if s.wal != nil {
		opts = append(opts, assign.Journal(&sessionJournal{sid: sid, meta: metaRaw, log: s.wal}))
	}
	if meta.NoCache {
		opts = append(opts, assign.NoCache())
	}
	sess, err := s.planner.RestoreSession(st, deltas, opts...)
	if err != nil {
		return nil, err
	}
	entry := &sessionEntry{id: sid, sess: sess, meta: metaRaw}
	s.sessMu.Lock()
	s.sessions[sid] = entry
	s.sessMu.Unlock()
	return entry, nil
}

// checkpoint re-journals the complete live state into a fresh barrier segment
// and drops every segment below it. Sessions re-anchor through their own
// journal hook (WriteSnapshot runs under each session's mutex), so a delta
// racing the checkpoint lands either before its session's snapshot — and is
// subsumed — or after it — and replays on top: log order stays apply order.
func (s *server) checkpoint() error {
	barrier, err := s.wal.BeginCheckpoint()
	if err != nil {
		return err
	}
	s.sessMu.Lock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.sessMu.Unlock()
	for _, e := range entries {
		if err := e.sess.WriteSnapshot(); err != nil && !errors.Is(err, assign.ErrSessionClosed) {
			return err
		}
		// A session closed mid-checkpoint is fine: its DELETE wrote a close
		// record, and a close always lands after the last WriteSnapshot that
		// could have succeeded.
	}
	s.walMu.Lock()
	live := make(map[string]walJob, len(s.walJobs))
	for id, j := range s.walJobs {
		live[id] = j
	}
	s.walMu.Unlock()
	for id, j := range live {
		if err := s.wal.Append(&wal.Record{
			Kind: wal.KindJobSubmit, JobID: id, JobKind: j.kind, JobBody: j.body,
		}); err != nil {
			return err
		}
		// If this job finished between the copy above and this append, its
		// done record is also in the log; recovery's done-set wins.
	}
	return s.wal.EndCheckpoint(barrier)
}

// runCheckpointer compacts on a timer, skipping ticks with nothing to do.
func (s *server) runCheckpointer() {
	defer s.checkpointWG.Done()
	interval := s.cfg.CheckpointInterval
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.checkpointStop:
			return
		case <-t.C:
			s.sessMu.Lock()
			liveSessions := len(s.sessions)
			s.sessMu.Unlock()
			s.walMu.Lock()
			liveJobs := len(s.walJobs)
			s.walMu.Unlock()
			if liveSessions == 0 && liveJobs == 0 && s.wal.Segments() <= 1 {
				continue // nothing live, nothing to compact
			}
			if err := s.checkpoint(); err != nil {
				s.log.Warn("wal checkpoint", "error", err)
			}
		}
	}
}

// stopCheckpointer stops the loop; safe to call when none runs.
func (s *server) stopCheckpointer() {
	if s.checkpointStop == nil {
		return
	}
	s.checkpointOnce.Do(func() { close(s.checkpointStop) })
	s.checkpointWG.Wait()
}

// journalSessionClose records a client-initiated close. Only the DELETE
// handler (and the create path's limit-race abort) calls it: the shutdown
// drain closes sessions without close records, which is precisely what lets
// them survive a restart. The handler's ctx traces the append; the cluster
// drain passes its own.
func (s *server) journalSessionClose(ctx context.Context, id string) {
	if s.wal == nil {
		return
	}
	_ = s.wal.AppendCtx(ctx, &wal.Record{Kind: wal.KindSessionClose, SID: id})
}

// journalJobSubmit records an accepted v2 job so a crash re-enqueues it.
func (s *server) journalJobSubmit(ctx context.Context, id, kind string, body jobSubmitRequest) {
	if s.wal == nil {
		return
	}
	raw, err := json.Marshal(body)
	if err != nil {
		s.log.Warn("job not journaled", "job", id, "error", err)
		return
	}
	s.walMu.Lock()
	s.walJobs[id] = walJob{kind: kind, body: raw}
	s.walMu.Unlock()
	_ = s.wal.AppendCtx(ctx, &wal.Record{Kind: wal.KindJobSubmit, JobID: id, JobKind: kind, JobBody: raw})
}

// jobFinished is the jobs.Manager OnFinish hook (it runs under the manager
// lock, so it must not call back into the manager). Shutdown-drained jobs get
// no done record: they never ran to completion, and the missing record is
// what makes recovery re-enqueue them.
func (s *server) jobFinished(snap jobs.Snapshot) {
	if s.wal == nil {
		return
	}
	if errors.Is(snap.Err, jobs.ErrShutdown) {
		return
	}
	s.walMu.Lock()
	_, journaled := s.walJobs[snap.ID]
	delete(s.walJobs, snap.ID)
	s.walMu.Unlock()
	if !journaled {
		return // e.g. a rebuild job; those are rescheduled from drift, not the WAL
	}
	_ = s.wal.Append(&wal.Record{Kind: wal.KindJobDone, JobID: snap.ID})
}
