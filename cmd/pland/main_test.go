package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/assign"
)

// newTestServerCfg spins a full server (planner, job manager, mux) behind
// httptest and tears both down with the test.
func newTestServerCfg(t *testing.T, cfg serverConfig) *httptest.Server {
	t.Helper()
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return srv
}

func newTestServer(t *testing.T) *httptest.Server {
	return newTestServerCfg(t, serverConfig{})
}

func postPlan(t *testing.T, srv *httptest.Server, body string) (*http.Response, planResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out planResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, out
}

// decodeErrorEnvelope asserts the unified {"error":{"code","message"}} shape
// and returns the code.
func decodeErrorEnvelope(t *testing.T, resp *http.Response) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not the envelope shape: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error envelope missing code or message: %+v", env)
	}
	return env.Error.Code
}

// TestPlanEndToEndA2A drives POST /v1/plan through a real HTTP round trip:
// the answer must be a valid schema for the instance, and the isomorphic
// repeat must be served from the cache.
func TestPlanEndToEndA2A(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postPlan(t, srv, `{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Schema == nil {
		t.Fatal("no schema in response")
	}
	set := assign.MustNewInputSet([]assign.Size{3, 3, 2, 2, 4, 1})
	if err := out.Schema.ValidateA2A(set); err != nil {
		t.Fatalf("served schema invalid: %v", err)
	}
	if out.Reducers != out.Schema.NumReducers() {
		t.Errorf("reducers field %d != schema %d", out.Reducers, out.Schema.NumReducers())
	}
	if out.Reducers < out.LowerBoundReducers {
		t.Errorf("reducers %d below lower bound %d", out.Reducers, out.LowerBoundReducers)
	}
	if out.Winner == "" {
		t.Error("missing winner")
	}
	if out.CacheHit {
		t.Error("first request cannot hit the cache")
	}

	// An isomorphic permutation of the same instance must be a cache hit
	// with the same reducer count.
	resp2, out2 := postPlan(t, srv, `{"problem":"A2A","capacity":10,"sizes":[1,4,2,3,2,3]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Error("isomorphic repeat was not served from cache")
	}
	if out2.Reducers != out.Reducers {
		t.Errorf("cache served %d reducers, fresh solve %d", out2.Reducers, out.Reducers)
	}
	permuted := assign.MustNewInputSet([]assign.Size{1, 4, 2, 3, 2, 3})
	if err := out2.Schema.ValidateA2A(permuted); err != nil {
		t.Fatalf("cached schema invalid for permuted instance: %v", err)
	}
}

func TestPlanEndToEndX2Y(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postPlan(t, srv, `{"problem":"X2Y","capacity":10,"x_sizes":[7,2,1],"y_sizes":[1,2,1,1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	xs := assign.MustNewInputSet([]assign.Size{7, 2, 1})
	ys := assign.MustNewInputSet([]assign.Size{1, 2, 1, 1})
	if err := out.Schema.ValidateX2Y(xs, ys); err != nil {
		t.Fatalf("served schema invalid: %v", err)
	}
}

func TestPlanRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		body     string
		want     int
		wantCode string
	}{
		{`{"problem":"A2A","capacity":10}`, http.StatusBadRequest, "bad_request"}, // no sizes
		{`{"problem":"A2A","capacity":0,"sizes":[1]}`, http.StatusBadRequest, "bad_request"},
		{`{"problem":"nope","capacity":10,"sizes":[1]}`, http.StatusBadRequest, "bad_request"},
		{`{"problem":"A2A","capacity":10,"sizes":[1],"bogus":1}`, http.StatusBadRequest, "bad_request"},
		{`not json`, http.StatusBadRequest, "bad_request"},
		{`{"problem":"A2A","capacity":2,"sizes":[5,5]}`, http.StatusUnprocessableEntity, "unprocessable"}, // infeasible
	}
	for _, tc := range cases {
		resp, _ := postPlan(t, srv, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status = %d, want %d", tc.body, resp.StatusCode, tc.want)
			continue
		}
		if code := decodeErrorEnvelope(t, resp); code != tc.wantCode {
			t.Errorf("body %q: error code = %q, want %q", tc.body, code, tc.wantCode)
		}
	}

	get, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan status = %d, want 405", get.StatusCode)
	}
	if code := decodeErrorEnvelope(t, get); code != "method_not_allowed" {
		t.Errorf("GET /v1/plan error code = %q", code)
	}
}

func TestPlanRejectsOversizedInstance(t *testing.T) {
	capped := newTestServerCfg(t, serverConfig{MaxInputs: 4})
	resp, err := http.Post(capped.URL+"/v1/plan", "application/json",
		bytes.NewBufferString(`{"problem":"A2A","capacity":10,"sizes":[1,1,1,1,1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized instance status = %d, want 400", resp.StatusCode)
	}
}

func TestPlanRejectsOversizedBody(t *testing.T) {
	capped := newTestServerCfg(t, serverConfig{MaxBodyBytes: 64})
	// A syntactically valid request whose body is longer than the cap.
	body := `{"problem":"A2A","capacity":10,"sizes":[` + strings.Repeat("1,", 100) + `1]}`
	for _, path := range []string{"/v1/plan", "/v1/execute"} {
		resp, err := http.Post(capped.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s oversized body status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestPlanBudgetExhaustionMapsToGatewayTimeout(t *testing.T) {
	// A server whose whole request budget is one nanosecond: the context is
	// exhausted before any solver can finish, so the planner surfaces the
	// context error and the handler maps it to 504. NoCache keeps the request
	// on the context-bounded solve path.
	srv := newTestServerCfg(t, serverConfig{
		DefaultTimeout: time.Nanosecond,
		MaxTimeout:     time.Nanosecond,
	})
	var sizes []string
	for i := 0; i < 5000; i++ {
		sizes = append(sizes, "1")
	}
	body := `{"problem":"A2A","capacity":10,"no_cache":true,"sizes":[` + strings.Join(sizes, ",") + `]}`
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("budget exhaustion status = %d, want 504", resp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, resp); code != "plan_timeout" {
		t.Errorf("error code = %q, want plan_timeout", code)
	}
}

func postExecute(t *testing.T, srv *httptest.Server, body string) (*http.Response, executeResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/execute", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out executeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding execute response: %v", err)
		}
	}
	return resp, out
}

// TestExecuteEndToEndA2A drives the plan-and-run endpoint: the service plans
// a schema for the payloads, executes it on the engine, and returns the
// audited run.
func TestExecuteEndToEndA2A(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postExecute(t, srv, `{"problem":"A2A","capacity":10,"inputs":["aaa","bbb","cc","d"],"return_pairs":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Pairs != 6 {
		t.Errorf("pairs = %d, want 6 (all pairs of 4 inputs)", out.Pairs)
	}
	if !out.Audited {
		t.Error("execution was not audited")
	}
	if out.Schema == nil || out.Reducers != out.Schema.NumReducers() || out.Reducers == 0 {
		t.Errorf("schema/reducers inconsistent: %d", out.Reducers)
	}
	if len(out.PairIDs) != 6 {
		t.Errorf("pair_ids = %v, want 6 entries", out.PairIDs)
	}
	seen := map[string]bool{}
	for _, p := range out.PairIDs {
		if seen[p] {
			t.Errorf("pair %q returned twice", p)
		}
		seen[p] = true
	}
	if out.ShuffleBytes == 0 || out.MaxReducerLoad == 0 {
		t.Error("expected non-zero shuffle accounting")
	}
	// Engine loads are the payload bytes (bounded by q per the schema) plus
	// per-record key and framing overhead.
	perRecordOverhead := int64(len("r9") + len("a|9|"))
	if out.MaxReducerLoad > 10+out.ShuffleRecords*perRecordOverhead {
		t.Errorf("max reducer load %d far exceeds q plus framing", out.MaxReducerLoad)
	}
}

func TestExecuteEndToEndX2Y(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postExecute(t, srv, `{"problem":"X2Y","capacity":10,"x_inputs":["aaaaaaa","bb","c"],"y_inputs":["d","ee","f","g"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Pairs != 12 {
		t.Errorf("pairs = %d, want 12 (3x4 cross pairs)", out.Pairs)
	}
	if !out.Audited {
		t.Error("execution was not audited")
	}
}

func TestExecuteRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"problem":"A2A","capacity":10}`, http.StatusBadRequest},                          // no inputs
		{`{"problem":"A2A","capacity":0,"inputs":["a"]}`, http.StatusBadRequest},            // bad capacity
		{`{"problem":"A2A","capacity":10,"inputs":["a",""]}`, http.StatusBadRequest},        // empty payload
		{`{"problem":"nope","capacity":10,"inputs":["a"]}`, http.StatusBadRequest},          // bad problem
		{`{"problem":"A2A","capacity":10,"inputs":["a"],"bogus":1}`, http.StatusBadRequest}, // unknown field
		{`not json`, http.StatusBadRequest},
		{`{"problem":"A2A","capacity":2,"inputs":["aaa","bbb"]}`, http.StatusUnprocessableEntity}, // infeasible
	}
	for _, tc := range cases {
		resp, _ := postExecute(t, srv, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	get, err := http.Get(srv.URL + "/v1/execute")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/execute status = %d, want 405", get.StatusCode)
	}
}

func TestExecuteRejectsOversizedInstance(t *testing.T) {
	capped := newTestServerCfg(t, serverConfig{MaxExecInputs: 3})
	resp, err := http.Post(capped.URL+"/v1/execute", "application/json",
		bytes.NewBufferString(`{"problem":"A2A","capacity":10,"inputs":["a","b","c","d"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized execute instance status = %d, want 400", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv := newTestServer(t)
	for i := 0; i < 2; i++ { // second call is a cache hit
		resp, _ := postPlan(t, srv, `{"problem":"A2A","capacity":8,"sizes":[2,2,2,2]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 hit, 1 miss", st.Stats)
	}
	if len(st.SolverWins) == 0 {
		t.Error("expected a solver win recorded")
	}
	if st.Jobs.QueueCapacity == 0 || st.Jobs.Workers == 0 {
		t.Errorf("job stats missing: %+v", st.Jobs)
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(health.Body); err != nil {
		t.Fatal(err)
	}
	if health.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "ok") {
		t.Errorf("healthz = %d %q", health.StatusCode, buf.String())
	}
}

func TestUnknownEndpointGetsEnvelope(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, resp); code != "not_found" {
		t.Errorf("error code = %q, want not_found", code)
	}
}
