package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/planner"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServer(planner.New(planner.Config{}), serverConfig{}))
	t.Cleanup(srv.Close)
	return srv
}

func postPlan(t *testing.T, srv *httptest.Server, body string) (*http.Response, planResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out planResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, out
}

// TestPlanEndToEndA2A drives POST /v1/plan through a real HTTP round trip:
// the answer must be a valid schema for the instance, and the isomorphic
// repeat must be served from the cache.
func TestPlanEndToEndA2A(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postPlan(t, srv, `{"problem":"A2A","capacity":10,"sizes":[3,3,2,2,4,1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Schema == nil {
		t.Fatal("no schema in response")
	}
	set := core.MustNewInputSet([]core.Size{3, 3, 2, 2, 4, 1})
	if err := out.Schema.ValidateA2A(set); err != nil {
		t.Fatalf("served schema invalid: %v", err)
	}
	if out.Reducers != out.Schema.NumReducers() {
		t.Errorf("reducers field %d != schema %d", out.Reducers, out.Schema.NumReducers())
	}
	if out.Reducers < out.LowerBoundReducers {
		t.Errorf("reducers %d below lower bound %d", out.Reducers, out.LowerBoundReducers)
	}
	if out.Winner == "" {
		t.Error("missing winner")
	}
	if out.CacheHit {
		t.Error("first request cannot hit the cache")
	}

	// An isomorphic permutation of the same instance must be a cache hit
	// with the same reducer count.
	resp2, out2 := postPlan(t, srv, `{"problem":"A2A","capacity":10,"sizes":[1,4,2,3,2,3]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Error("isomorphic repeat was not served from cache")
	}
	if out2.Reducers != out.Reducers {
		t.Errorf("cache served %d reducers, fresh solve %d", out2.Reducers, out.Reducers)
	}
	permuted := core.MustNewInputSet([]core.Size{1, 4, 2, 3, 2, 3})
	if err := out2.Schema.ValidateA2A(permuted); err != nil {
		t.Fatalf("cached schema invalid for permuted instance: %v", err)
	}
}

func TestPlanEndToEndX2Y(t *testing.T) {
	srv := newTestServer(t)
	resp, out := postPlan(t, srv, `{"problem":"X2Y","capacity":10,"x_sizes":[7,2,1],"y_sizes":[1,2,1,1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	xs := core.MustNewInputSet([]core.Size{7, 2, 1})
	ys := core.MustNewInputSet([]core.Size{1, 2, 1, 1})
	if err := out.Schema.ValidateX2Y(xs, ys); err != nil {
		t.Fatalf("served schema invalid: %v", err)
	}
}

func TestPlanRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"problem":"A2A","capacity":10}`, http.StatusBadRequest}, // no sizes
		{`{"problem":"A2A","capacity":0,"sizes":[1]}`, http.StatusBadRequest},
		{`{"problem":"nope","capacity":10,"sizes":[1]}`, http.StatusBadRequest},
		{`{"problem":"A2A","capacity":10,"sizes":[1],"bogus":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"problem":"A2A","capacity":2,"sizes":[5,5]}`, http.StatusUnprocessableEntity}, // infeasible
	}
	for _, tc := range cases {
		resp, _ := postPlan(t, srv, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	get, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan status = %d, want 405", get.StatusCode)
	}
}

func TestPlanRejectsOversizedInstance(t *testing.T) {
	capped := httptest.NewServer(newServer(planner.New(planner.Config{}), serverConfig{MaxInputs: 4}))
	defer capped.Close()
	resp, err := http.Post(capped.URL+"/v1/plan", "application/json",
		bytes.NewBufferString(`{"problem":"A2A","capacity":10,"sizes":[1,1,1,1,1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized instance status = %d, want 400", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv := newTestServer(t)
	for i := 0; i < 2; i++ { // second call is a cache hit
		resp, _ := postPlan(t, srv, `{"problem":"A2A","capacity":8,"sizes":[2,2,2,2]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 hit, 1 miss", st.Stats)
	}
	if len(st.SolverWins) == 0 {
		t.Error("expected a solver win recorded")
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(health.Body); err != nil {
		t.Fatal(err)
	}
	if health.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "ok") {
		t.Errorf("healthz = %d %q", health.StatusCode, buf.String())
	}
}
