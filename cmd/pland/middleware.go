package main

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// HTTP surface series on obs.Default. Route labels come from a small fixed
// vocabulary — IDs are normalized away — so the label sets stay bounded no
// matter what clients request.
var (
	obsHTTPRequests = obs.Default.CounterVec("pland_http_requests_total",
		"HTTP requests served, by normalized route and status code.", "route", "status")
	obsHTTPSeconds = obs.Default.HistogramVec("pland_http_request_seconds",
		"HTTP request latency, by normalized route.", obs.LatencyBuckets, "route")
	obsHTTPInFlight = obs.Default.Gauge("pland_http_in_flight",
		"HTTP requests currently being served.")
)

// requestIDHeader is the correlation header: honored when the client sends a
// sane value, generated otherwise, and always echoed on the response so a
// client can quote it when reporting a failure.
const requestIDHeader = "X-Request-ID"

// routeLabel collapses a request path onto the bounded route vocabulary.
func routeLabel(path string) string {
	switch path {
	case "/v1/plan", "/v1/execute", "/v1/stats",
		"/v2/jobs", "/v2/sessions", "/healthz", "/readyz",
		"/internal/handoff", "/metrics":
		return path
	}
	if path == "/debug/traces" {
		return path
	}
	switch {
	case strings.HasPrefix(path, "/v2/jobs/"):
		return "/v2/jobs/{id}"
	case strings.HasPrefix(path, "/v2/sessions/"):
		return "/v2/sessions/{id}"
	case strings.HasPrefix(path, "/internal/cache/"):
		return "/internal/cache/{key}"
	case strings.HasPrefix(path, "/debug/traces/"):
		return "/debug/traces/{id}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

// validRequestID accepts inbound correlation IDs that are short and plain
// ASCII; anything else (empty, oversized, control bytes, quote/backslash that
// would need escaping in logs and headers) is replaced by a generated ID.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// statusWriter captures what a handler wrote without changing how it writes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// withObs wraps next with the observability spine: request-ID propagation, a
// per-request trace-root span that stage spans report into (joining the
// inbound traceparent's trace when one arrives), per-route request counters
// and latency histograms, the flight recorder, and one structured log line
// per request.
func withObs(logger *slog.Logger, rec *obs.Recorder, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := routeLabel(r.URL.Path)

		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		if tc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			ctx = obs.WithTraceContext(ctx, tc)
		}
		ctx = obs.WithRecorder(ctx, rec)
		ctx, sp := obs.StartSpan(ctx, route)
		if from := r.Header.Get(headerForwarded); from != "" {
			sp.SetAttr("forwarded_from", from)
		}
		w.Header().Set(requestIDHeader, id)
		w.Header().Set(obs.TraceparentHeader, sp.TraceContext().Traceparent())

		sw := &statusWriter{ResponseWriter: w}
		obsHTTPInFlight.Inc()
		next.ServeHTTP(sw, r.WithContext(ctx))
		obsHTTPInFlight.Dec()

		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing; net/http sends 200
		}
		elapsed := time.Since(start)
		obsHTTPRequests.With(route, strconv.Itoa(status)).Inc()
		obsHTTPSeconds.With(route).ObserveDuration(elapsed)

		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", status),
			slog.Int64("bytes", sw.bytes),
		}
		attrs = append(attrs, sp.LogAttrs()...)
		logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)

		// End after the log line so LogAttrs sees a live span; failed/slow
		// retention in the recorder triggers here.
		if status >= 400 {
			sp.SetError("HTTP " + strconv.Itoa(status))
		}
		sp.End()
	})
}

// registerDebug mounts the metrics, pprof, and trace endpoints on mux. They
// sit on the main listener by default and move to -debug-addr when one is
// given.
func (s *server) registerDebug(mux *http.ServeMux) {
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/traces/", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// debugMux builds the standalone handler the -debug-addr listener serves.
func (s *server) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	s.registerDebug(mux)
	return mux
}
