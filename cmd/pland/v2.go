package main

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// Job kinds of the v2 API.
const (
	jobTypePlan    = "plan"
	jobTypeExecute = "execute"
)

// jobSubmitRequest is the JSON body of POST /v2/jobs: one job of either
// kind, with the same payload the synchronous v1 endpoint takes.
type jobSubmitRequest struct {
	// Type is "plan" or "execute".
	Type string `json:"type"`
	// Plan is the job payload when Type is "plan".
	Plan *planRequest `json:"plan,omitempty"`
	// Execute is the job payload when Type is "execute".
	Execute *executeRequest `json:"execute,omitempty"`
}

// jobResponse is the JSON view of one job, returned by every v2 endpoint.
type jobResponse struct {
	ID    string `json:"id"`
	Type  string `json:"type"`
	State string `json:"state"`
	// CreatedAt/StartedAt/FinishedAt stamp the lifecycle transitions;
	// ExpiresAt is when a finished job's result is evicted.
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	ExpiresAt  *time.Time `json:"expires_at,omitempty"`
	// Result is the planResponse or executeResponse once State is
	// "succeeded".
	Result any `json:"result,omitempty"`
	// Error carries the failure code and message once State is "failed" or
	// "canceled".
	Error *apiError `json:"error,omitempty"`
}

// jobView converts a manager snapshot into the wire shape.
func jobView(snap jobs.Snapshot) jobResponse {
	resp := jobResponse{
		ID:        snap.ID,
		Type:      snap.Kind,
		State:     string(snap.State),
		CreatedAt: snap.Created,
		Result:    snap.Result,
	}
	stamp := func(t time.Time) *time.Time {
		if t.IsZero() {
			return nil
		}
		return &t
	}
	resp.StartedAt = stamp(snap.Started)
	resp.FinishedAt = stamp(snap.Finished)
	resp.ExpiresAt = stamp(snap.ExpiresAt)
	switch {
	case snap.State == jobs.StateCanceled:
		// Cancellation wins over however the solver's abort surfaced (a raw
		// context error when queued, a plan_timeout-shaped wrapper when the
		// running portfolio was cut short): the client asked, the client
		// gets the canceled code it can branch on.
		resp.Error = &apiError{Code: codeCanceled, Message: "job canceled"}
	case snap.Err != nil:
		resp.Error = jobError(snap.Err)
	}
	return resp
}

// jobError maps a failed job's error to the stable envelope codes.
// Handler-built *apiError values round-trip intact; everything else is
// classified.
func jobError(err error) *apiError {
	var aerr *apiError
	switch {
	case errors.As(err, &aerr):
		return aerr
	case errors.Is(err, jobs.ErrShutdown):
		return &apiError{Status: http.StatusServiceUnavailable, Code: codeShuttingDown, Message: err.Error()}
	default:
		return &apiError{Status: http.StatusInternalServerError, Code: codeInternal, Message: err.Error()}
	}
}

// handleJobs serves POST /v2/jobs: validate synchronously (a malformed job
// fails fast with 400), then enqueue the solve itself. A full queue pushes
// back with 429 rather than buffering without bound.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, methodNotAllowed("POST"))
		return
	}
	// Under clustering the job ID is drawn up front so placement can route
	// the create to the ID's ring owner, exactly like session creation; the
	// owner enqueues it under the pinned ID so polls route the same way.
	var pinned string
	if s.cluster != nil {
		pinned = pinnedID(r)
		if pinned == "" {
			pinned = newJobID()
			if c := s.cluster; r.Header.Get(headerForwarded) == "" {
				if owner, ok := c.ring.Owner(pinned, c.health.Alive); ok && owner != c.self {
					if c.forward(w, r, pinned, owner, pinned) {
						return
					}
				}
			}
		}
	}
	var body jobSubmitRequest
	if aerr := s.decodeBody(w, r, &body); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	run, aerr := s.buildJobFunc(body)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	run = s.traceJobFunc(body.Type, r.Context(), run)
	var (
		snap jobs.Snapshot
		err  error
	)
	if pinned != "" {
		snap, err = s.jobs.Restore(pinned, body.Type, run)
	} else {
		snap, err = s.jobs.Submit(body.Type, run)
	}
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeAPIError(w, &apiError{Status: http.StatusTooManyRequests, Code: codeQueueFull,
			Message: "job queue is full, retry later"})
		return
	case errors.Is(err, jobs.ErrShutdown):
		writeAPIError(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeShuttingDown,
			Message: "server is shutting down"})
		return
	case err != nil:
		writeAPIError(w, &apiError{Status: http.StatusInternalServerError, Code: codeInternal, Message: err.Error()})
		return
	}
	s.journalJobSubmit(r.Context(), snap.ID, body.Type, body)
	writeJSON(w, http.StatusAccepted, jobView(snap))
}

// buildJobFunc validates a job payload and binds it into the closure the job
// queue runs. Submission and boot-time recovery share it, so a journaled job
// re-enqueues with exactly the semantics it was accepted with.
func (s *server) buildJobFunc(body jobSubmitRequest) (jobs.Func, *apiError) {
	switch body.Type {
	case jobTypePlan:
		if body.Plan == nil {
			return nil, badRequestf(`job type "plan" needs a "plan" payload`)
		}
		req := *body.Plan
		if aerr := s.validatePlan(req); aerr != nil {
			return nil, aerr
		}
		return func(ctx context.Context) (any, error) {
			jctx, cancel := context.WithTimeout(ctx, s.cfg.MaxJobTimeout)
			defer cancel()
			resp, aerr := s.runPlan(jctx, req, s.cfg.MaxJobTimeout)
			if aerr != nil {
				return nil, aerr
			}
			return resp, nil
		}, nil
	case jobTypeExecute:
		if body.Execute == nil {
			return nil, badRequestf(`job type "execute" needs an "execute" payload`)
		}
		req := *body.Execute
		if aerr := s.validateExecute(req); aerr != nil {
			return nil, aerr
		}
		return func(ctx context.Context) (any, error) {
			jctx, cancel := context.WithTimeout(ctx, s.cfg.MaxJobTimeout)
			defer cancel()
			resp, aerr := s.runExecute(jctx, req, s.cfg.MaxJobTimeout)
			if aerr != nil {
				return nil, aerr
			}
			return resp, nil
		}, nil
	default:
		return nil, badRequestf(`job type must be "plan" or "execute", got %q`, body.Type)
	}
}

// traceJobFunc wraps a job closure in its own trace root ("job:<kind>") that
// joins the submitting request's trace, so an async solve shows up under the
// same trace ID as the POST that enqueued it — with the queue wait and the
// run as separate child spans. submitCtx is read now (the request context
// dies when the response goes out); the returned closure runs later under
// the manager's context.
func (s *server) traceJobFunc(kind string, submitCtx context.Context, fn jobs.Func) jobs.Func {
	submitted := time.Now()
	rid := obs.RequestID(submitCtx)
	parent, _ := obs.TraceContextFrom(submitCtx)
	return func(ctx context.Context) (any, error) {
		if rid != "" {
			ctx = obs.WithRequestID(ctx, rid)
		}
		ctx = obs.WithTraceContext(ctx, parent)
		ctx = obs.WithRecorder(ctx, s.recorder)
		ctx, sp := obs.StartSpan(ctx, "job:"+kind)
		sp.StageAt("queue_wait", submitted)()
		done := sp.Stage("run")
		res, err := fn(ctx)
		done()
		if err != nil {
			sp.SetError(err.Error())
		}
		sp.End()
		return res, err
	}
}

// handleJob serves GET and DELETE /v2/jobs/{id}.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v2/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeAPIError(w, notFound("no such job"))
		return
	}
	// A job present locally always serves locally — rebuild jobs enqueue on
	// their session's node under manager-drawn IDs, so ring position must not
	// bounce their polls away. Only a local miss consults the ring.
	if _, err := s.jobs.Get(id); err != nil {
		if s.routeKeyed(w, r, id) {
			return
		}
	}
	switch r.Method {
	case http.MethodGet:
		snap, err := s.jobs.Get(id)
		if err != nil {
			writeAPIError(w, notFound("no such job (unknown ID, or result expired)"))
			return
		}
		writeJSON(w, http.StatusOK, jobView(snap))
	case http.MethodDelete:
		snap, err := s.jobs.Cancel(id)
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			writeAPIError(w, notFound("no such job (unknown ID, or result expired)"))
		case errors.Is(err, jobs.ErrFinished):
			writeAPIError(w, &apiError{Status: http.StatusConflict, Code: codeConflict,
				Message: "job already finished in state " + string(snap.State)})
		default:
			writeJSON(w, http.StatusOK, jobView(snap))
		}
	default:
		writeAPIError(w, methodNotAllowed("GET or DELETE"))
	}
}
