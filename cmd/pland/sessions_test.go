package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/pkg/assign"
	"repro/pkg/assign/plandclient"
)

func newSessionTestServer(t *testing.T, cfg serverConfig) *plandclient.Client {
	t.Helper()
	s := newServer(assign.NewPlanner(assign.PlannerConfig{}), cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return plandclient.New(srv.URL)
}

// validateSessionSchema checks a fetched session's schema with the core
// validator, exactly as an embedding client could.
func validateSessionSchema(t *testing.T, sess *plandclient.Session) {
	t.Helper()
	if len(sess.IDs) == 0 {
		return
	}
	set, err := assign.NewInputSet(sess.Sizes)
	if err != nil {
		t.Fatalf("session sizes: %v", err)
	}
	if err := sess.Schema.ValidateA2A(set); err != nil {
		t.Fatalf("session schema invalid: %v", err)
	}
}

func TestSessionLifecycleHTTP(t *testing.T) {
	c := newSessionTestServer(t, serverConfig{})
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 20, Sizes: []assign.Size{5, 3, 7, 2, 6}, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.ID == "" || sess.Stats.Inputs != 5 || sess.Schema == nil {
		t.Fatalf("created session = %+v", sess)
	}
	validateSessionSchema(t, sess)

	patch, err := c.UpdateSession(ctx, sess.ID,
		plandclient.AddDelta(4),
		plandclient.RemoveDelta(1),
		plandclient.ResizeDelta(0, 9),
	)
	if err != nil {
		t.Fatalf("UpdateSession: %v", err)
	}
	if patch.Applied != 3 {
		t.Fatalf("patch = %+v", patch)
	}
	if patch.Results[0].ID != 5 { // the add's new stable ID
		t.Fatalf("add delta result = %+v", patch.Results[0])
	}
	if patch.Stats.Inputs != 5 || patch.Stats.Adds != 1 || patch.Stats.Removes != 1 || patch.Stats.Resizes != 1 {
		t.Fatalf("stats after patch = %+v", patch.Stats)
	}

	got, err := c.GetSession(ctx, sess.ID)
	if err != nil {
		t.Fatalf("GetSession: %v", err)
	}
	validateSessionSchema(t, got)

	list, err := c.ListSessions(ctx)
	if err != nil || list.Count != 1 {
		t.Fatalf("ListSessions = %+v, %v", list, err)
	}
	if _, err := c.DeleteSession(ctx, sess.ID); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	if _, err := c.GetSession(ctx, sess.ID); !plandclient.IsCode(err, plandclient.CodeNotFound) {
		t.Fatalf("GetSession after delete: %v", err)
	}
}

// TestSessionRebuildOnJobQueue churns a session past its drift threshold and
// follows the scheduled rebuild through the shared v2 job queue.
func TestSessionRebuildOnJobQueue(t *testing.T) {
	c := newSessionTestServer(t, serverConfig{})
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 20, Sizes: []assign.Size{5, 5, 5, 5, 5, 5},
		RebuildThreshold: 0.05, TimeoutMS: -1,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	var jobID string
	next := 6
	for i := 0; i < 60 && jobID == ""; i++ {
		patch, err := c.UpdateSession(ctx, sess.ID,
			plandclient.RemoveDelta(next-6), plandclient.AddDelta(5))
		if err != nil {
			t.Fatalf("UpdateSession: %v", err)
		}
		if patch.Applied != 2 {
			t.Fatalf("patch = %+v", patch)
		}
		next++
		jobID = patch.RebuildJobID
	}
	if jobID == "" {
		t.Fatal("churn never scheduled a rebuild job")
	}
	final, err := c.WaitJob(ctx, jobID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob(rebuild): %v", err)
	}
	if final.State != plandclient.StateSucceeded {
		t.Fatalf("rebuild job ended %s (err %v)", final.State, final.Err())
	}
	got, err := c.GetSession(ctx, sess.ID)
	if err != nil {
		t.Fatalf("GetSession: %v", err)
	}
	if got.Stats.Rebuilds == 0 {
		t.Fatalf("session never rebuilt: %+v", got.Stats)
	}
	validateSessionSchema(t, got)
}

func TestSessionErrorPaths(t *testing.T) {
	c := newSessionTestServer(t, serverConfig{MaxSessions: 1})
	ctx := context.Background()

	if _, err := c.CreateSession(ctx, plandclient.SessionCreateRequest{Capacity: 0}); !plandclient.IsCode(err, plandclient.CodeBadRequest) {
		t.Fatalf("zero capacity: %v", err)
	}
	if _, err := c.CreateSession(ctx, plandclient.SessionCreateRequest{
		Capacity: 10, Sizes: []assign.Size{8, 8},
	}); !plandclient.IsCode(err, plandclient.CodeUnprocessable) {
		t.Fatalf("infeasible initial instance: %v", err)
	}

	sess, err := c.CreateSession(ctx, plandclient.SessionCreateRequest{Capacity: 10, Sizes: []assign.Size{6, 3}})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := c.CreateSession(ctx, plandclient.SessionCreateRequest{Capacity: 10}); !plandclient.IsCode(err, plandclient.CodeSessionLimit) {
		t.Fatalf("session limit: %v", err)
	}

	// A mid-batch failure stops the batch and reports per-delta errors.
	patch, err := c.UpdateSession(ctx, sess.ID,
		plandclient.AddDelta(1),
		plandclient.RemoveDelta(99),
		plandclient.AddDelta(1),
	)
	if err != nil {
		t.Fatalf("UpdateSession: %v", err)
	}
	if patch.Applied != 1 || len(patch.Results) != 2 {
		t.Fatalf("patch = %+v", patch)
	}
	if derr := patch.Results[1].Err(); !plandclient.IsCode(derr, plandclient.CodeNotFound) {
		t.Fatalf("unknown-id delta error = %v", derr)
	}
	// An infeasible add surfaces as unprocessable (6+5 > 10).
	patch, err = c.UpdateSession(ctx, sess.ID, plandclient.AddDelta(5))
	if err != nil {
		t.Fatalf("UpdateSession: %v", err)
	}
	if derr := patch.Results[0].Err(); !plandclient.IsCode(derr, plandclient.CodeUnprocessable) {
		t.Fatalf("infeasible delta error = %v", derr)
	}

	if _, err := c.UpdateSession(ctx, "nope", plandclient.AddDelta(1)); !plandclient.IsCode(err, plandclient.CodeNotFound) {
		t.Fatalf("patch unknown session: %v", err)
	}
	if _, err := c.DeleteSession(ctx, "nope"); !plandclient.IsCode(err, plandclient.CodeNotFound) {
		t.Fatalf("delete unknown session: %v", err)
	}
}
