// Command experiments regenerates the reproduction's tables and figure
// series (T1..T15, see EXPERIMENTS.md; T14 exercises the public pkg/assign
// portfolio facade, T15 the internal/stream incremental-maintenance
// session under churn). By default it runs everything at full
// scale and prints text tables; use -run to select experiments, -scale to
// shrink the workloads, and -csv for machine-readable output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runList = fs.String("run", "all", "comma-separated experiment IDs (e.g. T1,T6) or 'all'")
		scale   = fs.Float64("scale", 1.0, "workload scale factor")
		seed    = fs.Int64("seed", 42, "workload seed")
		workers = fs.Int("workers", 32, "worker count used for makespan estimates")
		csv     = fs.Bool("csv", false, "emit CSV instead of text tables")
		list    = fs.Bool("list", false, "list the available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	selected, err := selectExperiments(all, *runList)
	if err != nil {
		return err
	}
	params := experiments.Params{Seed: *seed, Scale: *scale, Workers: *workers}
	for _, e := range selected {
		tbl, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			fmt.Printf("# %s: %s\n", e.ID, e.Title)
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func selectExperiments(all []experiments.Experiment, runList string) ([]experiments.Experiment, error) {
	if strings.EqualFold(strings.TrimSpace(runList), "all") {
		return all, nil
	}
	byID := make(map[string]experiments.Experiment, len(all))
	for _, e := range all {
		byID[strings.ToUpper(e.ID)] = e
	}
	var out []experiments.Experiment
	for _, id := range strings.Split(runList, ",") {
		id = strings.ToUpper(strings.TrimSpace(id))
		if id == "" {
			continue
		}
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return out, nil
}
