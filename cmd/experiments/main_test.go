package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestSelectExperiments(t *testing.T) {
	all := experiments.All()
	sel, err := selectExperiments(all, "all")
	if err != nil || len(sel) != len(all) {
		t.Errorf("selectExperiments(all) = %d experiments, %v", len(sel), err)
	}
	sel, err = selectExperiments(all, "t1, T6")
	if err != nil || len(sel) != 2 || sel[0].ID != "T1" || sel[1].ID != "T6" {
		t.Errorf("selectExperiments(t1,T6) = %v, %v", sel, err)
	}
	if _, err := selectExperiments(all, "T99"); err == nil {
		t.Error("accepted unknown experiment ID")
	}
	if _, err := selectExperiments(all, " , "); err == nil {
		t.Error("accepted empty selection")
	}
}

func TestRunListAndSmallExperiment(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("-list: %v", err)
	}
	if err := run([]string{"-run", "T1", "-scale", "0.05"}); err != nil {
		t.Errorf("-run T1: %v", err)
	}
	if err := run([]string{"-run", "T9", "-scale", "0.05", "-csv"}); err != nil {
		t.Errorf("-run T9 -csv: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-run", "T99"}); err == nil {
		t.Error("accepted unknown experiment")
	}
}
