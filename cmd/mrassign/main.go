// Command mrassign computes a mapping schema for a described instance of the
// A2A or X2Y mapping-schema problem and prints its reducers and cost.
//
// Examples:
//
//	mrassign -problem a2a -q 10 -sizes 3,3,2,2,4,1
//	mrassign -problem a2a -q 64 -m 500 -dist zipf -max 30
//	mrassign -problem x2y -q 10 -xsizes 7,2,1 -ysizes 1,2,1,1 -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/a2a"
	"repro/internal/binpack"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/internal/x2y"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrassign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mrassign", flag.ContinueOnError)
	var (
		problem = fs.String("problem", "a2a", "problem to solve: a2a or x2y")
		q       = fs.Int64("q", 0, "reducer capacity (required)")
		sizes   = fs.String("sizes", "", "comma-separated input sizes for the A2A problem")
		xsizes  = fs.String("xsizes", "", "comma-separated X-side sizes for the X2Y problem")
		ysizes  = fs.String("ysizes", "", "comma-separated Y-side sizes for the X2Y problem")
		m       = fs.Int("m", 0, "generate this many inputs instead of -sizes")
		dist    = fs.String("dist", "uniform", "generated size distribution: constant, uniform, zipf, exponential, bimodal")
		maxSize = fs.Int64("max", 20, "maximum generated size")
		seed    = fs.Int64("seed", 42, "generator seed")
		policy  = fs.String("policy", "ffd", "bin-packing policy: ff, ffd, bfd, nf, wfd")
		verbose = fs.Bool("v", false, "print every reducer's input list")
		asJSON  = fs.Bool("json", false, "print the schema as JSON instead of a table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *q <= 0 {
		return fmt.Errorf("-q must be positive")
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	capacity := core.Size(*q)

	switch strings.ToLower(*problem) {
	case "a2a":
		set, err := a2aInputs(*sizes, *m, *dist, core.Size(*maxSize), *seed)
		if err != nil {
			return err
		}
		ms, err := a2a.SolveWithOptions(set, capacity, a2a.Options{Policy: pol, PreferEqualSized: true})
		if err != nil {
			return err
		}
		if err := ms.ValidateA2A(set); err != nil {
			return fmt.Errorf("internal error: produced schema is invalid: %w", err)
		}
		if *asJSON {
			return printJSON(ms)
		}
		printSchema(ms, core.SchemaCost(ms, set.TotalSize()), a2a.LowerBounds(set, capacity).Reducers, *verbose)
	case "x2y":
		xs, err := parseSizes(*xsizes)
		if err != nil {
			return fmt.Errorf("-xsizes: %w", err)
		}
		ys, err := parseSizes(*ysizes)
		if err != nil {
			return fmt.Errorf("-ysizes: %w", err)
		}
		xSet, err := core.NewInputSet(xs)
		if err != nil {
			return fmt.Errorf("-xsizes: %w", err)
		}
		ySet, err := core.NewInputSet(ys)
		if err != nil {
			return fmt.Errorf("-ysizes: %w", err)
		}
		ms, err := x2y.SolveWithOptions(xSet, ySet, capacity, x2y.Options{Policy: pol, OptimizeSplit: true})
		if err != nil {
			return err
		}
		if err := ms.ValidateX2Y(xSet, ySet); err != nil {
			return fmt.Errorf("internal error: produced schema is invalid: %w", err)
		}
		if *asJSON {
			return printJSON(ms)
		}
		printSchema(ms, core.SchemaCost(ms, xSet.TotalSize()+ySet.TotalSize()), x2y.LowerBounds(xSet, ySet, capacity).Reducers, *verbose)
	default:
		return fmt.Errorf("unknown problem %q (want a2a or x2y)", *problem)
	}
	return nil
}

func a2aInputs(sizesFlag string, m int, dist string, maxSize core.Size, seed int64) (*core.InputSet, error) {
	if sizesFlag != "" {
		sizes, err := parseSizes(sizesFlag)
		if err != nil {
			return nil, fmt.Errorf("-sizes: %w", err)
		}
		return core.NewInputSet(sizes)
	}
	if m <= 0 {
		return nil, fmt.Errorf("provide either -sizes or -m")
	}
	d, err := parseDistribution(dist)
	if err != nil {
		return nil, err
	}
	return workload.InputSet(workload.SizeSpec{Dist: d, Min: 1, Max: maxSize, Skew: 1.5}, m, seed)
}

func parseSizes(s string) ([]core.Size, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no sizes given")
	}
	parts := strings.Split(s, ",")
	out := make([]core.Size, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, core.Size(n))
	}
	return out, nil
}

func parsePolicy(s string) (binpack.Policy, error) {
	switch strings.ToLower(s) {
	case "ff", "first-fit":
		return binpack.FirstFit, nil
	case "ffd", "first-fit-decreasing":
		return binpack.FirstFitDecreasing, nil
	case "bfd", "best-fit-decreasing":
		return binpack.BestFitDecreasing, nil
	case "nf", "next-fit":
		return binpack.NextFit, nil
	case "wfd", "worst-fit-decreasing":
		return binpack.WorstFitDecreasing, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseDistribution(s string) (workload.Distribution, error) {
	switch strings.ToLower(s) {
	case "constant":
		return workload.Constant, nil
	case "uniform":
		return workload.Uniform, nil
	case "zipf":
		return workload.Zipf, nil
	case "exponential":
		return workload.Exponential, nil
	case "bimodal":
		return workload.Bimodal, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", s)
	}
}

// printJSON writes the schema in its JSON hand-off format (see
// core.MappingSchema.MarshalJSON) for consumption by external drivers.
func printJSON(ms *core.MappingSchema) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}

func printSchema(ms *core.MappingSchema, cost core.Cost, lbReducers int, verbose bool) {
	tbl := report.NewTable("Mapping schema ("+ms.Algorithm+")",
		"problem", "q", "reducers", "lb_reducers", "communication", "replication", "max_load")
	tbl.AddRow(ms.Problem, ms.Capacity, cost.Reducers, lbReducers, cost.Communication, cost.ReplicationRate, cost.MaxLoad)
	fmt.Print(tbl.String())
	if !verbose {
		return
	}
	for i, r := range ms.Reducers {
		if ms.Problem == core.ProblemA2A {
			fmt.Printf("reducer %d (load %d): %v\n", i, r.Load, r.Inputs)
		} else {
			fmt.Printf("reducer %d (load %d): X=%v Y=%v\n", i, r.Load, r.XInputs, r.YInputs)
		}
	}
}
