package main

import (
	"testing"

	"repro/internal/binpack"
	"repro/internal/workload"
)

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("3, 4,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 3 || sizes[2] != 5 {
		t.Errorf("parseSizes = %v", sizes)
	}
	if _, err := parseSizes(""); err == nil {
		t.Error("accepted empty size list")
	}
	if _, err := parseSizes("3,x"); err == nil {
		t.Error("accepted non-numeric size")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]binpack.Policy{
		"ff":                   binpack.FirstFit,
		"FFD":                  binpack.FirstFitDecreasing,
		"bfd":                  binpack.BestFitDecreasing,
		"nf":                   binpack.NextFit,
		"worst-fit-decreasing": binpack.WorstFitDecreasing,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parsePolicy("magic"); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestParseDistribution(t *testing.T) {
	cases := map[string]workload.Distribution{
		"constant":    workload.Constant,
		"Uniform":     workload.Uniform,
		"zipf":        workload.Zipf,
		"exponential": workload.Exponential,
		"bimodal":     workload.Bimodal,
	}
	for in, want := range cases {
		got, err := parseDistribution(in)
		if err != nil || got != want {
			t.Errorf("parseDistribution(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseDistribution("normalish"); err == nil {
		t.Error("accepted unknown distribution")
	}
}

func TestA2AInputs(t *testing.T) {
	set, err := a2aInputs("1,2,3", 0, "uniform", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("explicit sizes: Len = %d", set.Len())
	}
	gen, err := a2aInputs("", 20, "zipf", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != 20 {
		t.Errorf("generated: Len = %d", gen.Len())
	}
	if _, err := a2aInputs("", 0, "uniform", 10, 1); err == nil {
		t.Error("accepted neither -sizes nor -m")
	}
	if _, err := a2aInputs("", 5, "weird", 10, 1); err == nil {
		t.Error("accepted unknown distribution")
	}
}

func TestRunA2AAndX2Y(t *testing.T) {
	if err := run([]string{"-problem", "a2a", "-q", "10", "-sizes", "3,3,2,2,4,1", "-v"}); err != nil {
		t.Errorf("a2a run: %v", err)
	}
	if err := run([]string{"-problem", "x2y", "-q", "10", "-xsizes", "7,2,1", "-ysizes", "1,2,1,1", "-v"}); err != nil {
		t.Errorf("x2y run: %v", err)
	}
	if err := run([]string{"-problem", "a2a", "-q", "64", "-m", "50", "-dist", "zipf"}); err != nil {
		t.Errorf("generated a2a run: %v", err)
	}
	if err := run([]string{"-problem", "a2a", "-q", "10", "-sizes", "3,3,2", "-json"}); err != nil {
		t.Errorf("a2a json run: %v", err)
	}
	if err := run([]string{"-problem", "x2y", "-q", "10", "-xsizes", "2,1", "-ysizes", "1,2", "-json"}); err != nil {
		t.Errorf("x2y json run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-q", "0", "-sizes", "1,2"},                                   // bad capacity
		{"-problem", "nope", "-q", "5", "-sizes", "1,2"},               // bad problem
		{"-problem", "a2a", "-q", "5", "-sizes", "9,9"},                // infeasible
		{"-problem", "a2a", "-q", "5", "-policy", "zz", "-sizes", "1"}, // bad policy
		{"-problem", "x2y", "-q", "5", "-xsizes", "", "-ysizes", "1"},  // missing X sizes
		{"-problem", "x2y", "-q", "5", "-xsizes", "1", "-ysizes", ""},  // missing Y sizes
		{"-problem", "x2y", "-q", "5", "-xsizes", "0", "-ysizes", "1"}, // invalid X size
		{"-problem", "a2a", "-q", "5", "-sizes", "0"},                  // invalid size
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
