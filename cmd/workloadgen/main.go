// Command workloadgen generates the synthetic workloads used by the
// experiments — input-size lists, document corpora, and skewed relations —
// and writes them as CSV so they can be inspected or fed to external tools.
//
// Examples:
//
//	workloadgen -kind sizes -n 1000 -dist zipf -max 30 > sizes.csv
//	workloadgen -kind documents -n 200 -vocab 500 > docs.csv
//	workloadgen -kind relation -n 10000 -keys 200 -skew 1.5 > rel.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "sizes", "what to generate: sizes, documents, relation")
		n       = fs.Int("n", 100, "number of items (inputs, documents, or tuples)")
		dist    = fs.String("dist", "zipf", "size distribution for -kind sizes: constant, uniform, zipf, exponential, bimodal")
		minSize = fs.Int64("min", 1, "minimum size for -kind sizes")
		maxSize = fs.Int64("max", 30, "maximum size for -kind sizes")
		skew    = fs.Float64("skew", 1.5, "Zipf exponent (sizes) or key skew (relation)")
		vocab   = fs.Int("vocab", 500, "vocabulary size for -kind documents")
		minT    = fs.Int("minterms", 5, "minimum terms per document")
		maxT    = fs.Int("maxterms", 25, "maximum terms per document")
		keys    = fs.Int("keys", 100, "distinct join keys for -kind relation")
		payload = fs.Int("payload", 10, "payload bytes per tuple for -kind relation")
		name    = fs.String("name", "X", "relation name for -kind relation")
		seed    = fs.Int64("seed", 42, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch strings.ToLower(*kind) {
	case "sizes":
		d, err := parseDistribution(*dist)
		if err != nil {
			return err
		}
		spec := workload.SizeSpec{
			Dist: d,
			Min:  workloadSize(*minSize),
			Max:  workloadSize(*maxSize),
			Skew: *skew,
		}
		sizes, err := workload.Sizes(spec, *n, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "id,size")
		for i, s := range sizes {
			fmt.Fprintf(out, "%d,%d\n", i, s)
		}
	case "documents":
		docs, err := workload.Documents(workload.CorpusSpec{
			NumDocs: *n, VocabularySize: *vocab, MinTerms: *minT, MaxTerms: *maxT, TermSkew: *skew,
		}, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "id,size_bytes,terms")
		for _, d := range docs {
			fmt.Fprintf(out, "%d,%d,%s\n", d.ID, d.SizeBytes(), strings.Join(d.Terms, " "))
		}
	case "relation":
		rel, err := workload.GenerateRelation(workload.RelationSpec{
			Name: *name, NumTuples: *n, NumKeys: *keys, Skew: *skew, PayloadBytes: *payload,
		}, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "relation,key,payload")
		for _, t := range rel.Tuples {
			fmt.Fprintf(out, "%s,%s,%s\n", rel.Name, t.Key, t.Payload)
		}
	default:
		return fmt.Errorf("unknown kind %q (want sizes, documents, or relation)", *kind)
	}
	return nil
}

// workloadSize converts a flag value to the workload size type.
func workloadSize(v int64) core.Size { return core.Size(v) }

func parseDistribution(s string) (workload.Distribution, error) {
	switch strings.ToLower(s) {
	case "constant":
		return workload.Constant, nil
	case "uniform":
		return workload.Uniform, nil
	case "zipf":
		return workload.Zipf, nil
	case "exponential":
		return workload.Exponential, nil
	case "bimodal":
		return workload.Bimodal, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", s)
	}
}
