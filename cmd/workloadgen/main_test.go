package main

import (
	"strings"
	"testing"
)

func TestRunSizes(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-kind", "sizes", "-n", "10", "-dist", "uniform", "-min", "2", "-max", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want header + 10 rows", len(lines))
	}
	if lines[0] != "id,size" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunDocuments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-kind", "documents", "-n", "5", "-vocab", "50"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want header + 5 rows", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first document row = %q", lines[1])
	}
}

func TestRunRelation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-kind", "relation", "-n", "20", "-keys", "4", "-skew", "1.2", "-name", "Y"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 21 {
		t.Fatalf("got %d lines, want header + 20 rows", len(lines))
	}
	if !strings.HasPrefix(lines[1], "Y,k") {
		t.Errorf("first tuple row = %q", lines[1])
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-kind", "sizes", "-n", "50", "-dist", "zipf", "-seed", "7"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-kind", "nope"}, &b); err == nil {
		t.Error("accepted unknown kind")
	}
	if err := run([]string{"-kind", "sizes", "-dist", "weird"}, &b); err == nil {
		t.Error("accepted unknown distribution")
	}
	if err := run([]string{"-kind", "sizes", "-n", "0"}, &b); err == nil {
		t.Error("accepted n=0")
	}
	if err := run([]string{"-kind", "documents", "-n", "0"}, &b); err == nil {
		t.Error("accepted zero documents")
	}
	if err := run([]string{"-kind", "relation", "-keys", "0"}, &b); err == nil {
		t.Error("accepted zero keys")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, name := range []string{"constant", "uniform", "zipf", "exponential", "bimodal"} {
		if _, err := parseDistribution(name); err != nil {
			t.Errorf("parseDistribution(%q) = %v", name, err)
		}
	}
	if _, err := parseDistribution("other"); err == nil {
		t.Error("accepted unknown distribution")
	}
}
