package main

import (
	"strings"
	"testing"
)

func TestRunSmallCorpus(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-docs", "40", "-vocab", "60", "-q", "800", "-threshold", "0.4", "-show", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Similarity join") || !strings.Contains(out, "verified against the nested-loop reference: OK") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunCosine(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-docs", "25", "-q", "600", "-similarity", "cosine", "-threshold", "0.6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cosine") {
		t.Errorf("output does not mention the similarity function:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-similarity", "hamming"}, &b); err == nil {
		t.Error("accepted an unknown similarity function")
	}
	if err := run([]string{"-docs", "0"}, &b); err == nil {
		t.Error("accepted zero documents")
	}
	// Capacity far below two documents -> infeasible schema.
	if err := run([]string{"-docs", "10", "-q", "4"}, &b); err == nil {
		t.Error("accepted an infeasible capacity")
	}
}
