// Command simjoin runs the similarity-join application end to end on a
// synthetic document corpus: it builds the A2A mapping schema for the chosen
// reducer capacity, executes the all-pairs comparison on the in-memory
// MapReduce engine, verifies the answer against the nested-loop reference,
// and prints the cost figures.
//
// Example:
//
//	simjoin -docs 500 -q 6000 -threshold 0.6 -similarity cosine
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/report"
	"repro/internal/simjoin"
	"repro/internal/workload"
	"repro/pkg/assign"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simjoin:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simjoin", flag.ContinueOnError)
	var (
		numDocs   = fs.Int("docs", 300, "number of synthetic documents")
		vocab     = fs.Int("vocab", 300, "vocabulary size")
		minTerms  = fs.Int("minterms", 5, "minimum terms per document")
		maxTerms  = fs.Int("maxterms", 25, "maximum terms per document")
		termSkew  = fs.Float64("termskew", 1.2, "Zipf exponent of term popularity")
		q         = fs.Int64("q", 4000, "reducer capacity in bytes of document text")
		threshold = fs.Float64("threshold", 0.5, "similarity threshold t")
		simName   = fs.String("similarity", "jaccard", "similarity function: jaccard or cosine")
		seed      = fs.Int64("seed", 42, "workload seed")
		verify    = fs.Bool("verify", true, "check the result against the nested-loop reference")
		showPairs = fs.Int("show", 5, "print up to this many similar pairs")
		memBudget = fs.Int64("membudget", 0, "in-memory shuffle budget in bytes; over-budget partitions spill to disk (0 = unbounded)")
		spillDir  = fs.String("spilldir", "", "directory for spill run files (default: OS temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sim simjoin.Similarity
	switch strings.ToLower(*simName) {
	case "jaccard":
		sim = simjoin.Jaccard
	case "cosine":
		sim = simjoin.Cosine
	default:
		return fmt.Errorf("unknown similarity %q (want jaccard or cosine)", *simName)
	}

	docs, err := workload.Documents(workload.CorpusSpec{
		NumDocs:        *numDocs,
		VocabularySize: *vocab,
		MinTerms:       *minTerms,
		MaxTerms:       *maxTerms,
		TermSkew:       *termSkew,
	}, *seed)
	if err != nil {
		return err
	}
	cfg := simjoin.Config{
		Capacity:     assign.Size(*q),
		Threshold:    *threshold,
		Similarity:   sim,
		MemoryBudget: *memBudget,
		SpillDir:     *spillDir,
	}
	res, err := simjoin.Run(docs, cfg)
	if err != nil {
		return err
	}

	tbl := report.NewTable(fmt.Sprintf("Similarity join: %d documents, %s >= %.2f, q=%d bytes", len(docs), sim, *threshold, *q),
		"reducers", "lb_reducers", "schema_comm", "shuffle_bytes", "max_load", "replication", "similar_pairs")
	tbl.AddRow(res.SchemaCost.Reducers, res.Bounds.Reducers, res.SchemaCost.Communication,
		res.Counters.ShuffleBytes, res.Counters.MaxReducerLoad, res.SchemaCost.ReplicationRate, len(res.Pairs))
	if err := tbl.WriteText(out); err != nil {
		return err
	}

	if *verify {
		ref := simjoin.NestedLoopReference(docs, cfg)
		if len(ref) != len(res.Pairs) {
			return fmt.Errorf("verification failed: engine found %d pairs, reference %d", len(res.Pairs), len(ref))
		}
		fmt.Fprintln(out, "verified against the nested-loop reference: OK")
	}
	for i, p := range res.Pairs {
		if i >= *showPairs {
			fmt.Fprintf(out, "... and %d more pairs\n", len(res.Pairs)-*showPairs)
			break
		}
		fmt.Fprintf(out, "  doc %d ~ doc %d  similarity %.3f\n", p.I, p.J, p.Score)
	}
	return nil
}
