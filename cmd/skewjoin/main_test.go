package main

import (
	"strings"
	"testing"
)

func TestRunWithHeavyHitters(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-tuples", "2000", "-keys", "30", "-skew", "1.4", "-q", "3000"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Skew join") || !strings.Contains(out, "output verified against the reference hash join: OK") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "Plain hash-join baseline") {
		t.Errorf("baseline section missing:\n%s", out)
	}
}

func TestRunUniformKeysWithoutBaseline(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tuples", "500", "-keys", "20", "-skew", "0", "-q", "4000", "-baseline=false"}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "Plain hash-join baseline") {
		t.Error("baseline section printed despite -baseline=false")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-tuples", "0"}, &b); err == nil {
		t.Error("accepted zero tuples")
	}
	if err := run([]string{"-q", "0"}, &b); err == nil {
		t.Error("accepted zero capacity")
	}
	// A capacity below a single pair of tuples is infeasible for heavy keys.
	if err := run([]string{"-tuples", "200", "-keys", "2", "-skew", "1.5", "-q", "20", "-payload", "30"}, &b); err == nil {
		t.Error("accepted an infeasible capacity")
	}
}
