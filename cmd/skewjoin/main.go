// Command skewjoin runs the skew-join application end to end on synthetic
// relations with Zipf-distributed join keys: it detects the heavy hitters,
// builds per-heavy-hitter X2Y mapping schemas, executes the join on the
// in-memory MapReduce engine, verifies the output cardinality against the
// reference hash join, and compares the load profile against the plain
// hash-join baseline.
//
// Example:
//
//	skewjoin -tuples 20000 -keys 200 -skew 1.5 -q 32000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
	"repro/internal/skewjoin"
	"repro/internal/workload"
	"repro/pkg/assign"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skewjoin:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skewjoin", flag.ContinueOnError)
	var (
		tuples    = fs.Int("tuples", 10000, "tuples per relation")
		keys      = fs.Int("keys", 100, "distinct join keys")
		skew      = fs.Float64("skew", 1.3, "Zipf exponent of the join-key distribution (0 = uniform)")
		payload   = fs.Int("payload", 10, "payload bytes per tuple")
		q         = fs.Int64("q", 16000, "reducer capacity in bytes of tuple data")
		block     = fs.Int64("block", 0, "block size for heavy hitters (0 = q/4)")
		seed      = fs.Int64("seed", 42, "workload seed")
		baseline  = fs.Bool("baseline", true, "also run the plain hash-join baseline for comparison")
		memBudget = fs.Int64("membudget", 0, "in-memory shuffle budget in bytes; over-budget partitions spill to disk (0 = unbounded)")
		spillDir  = fs.String("spilldir", "", "directory for spill run files (default: OS temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	x, err := workload.GenerateRelation(workload.RelationSpec{
		Name: "X", NumTuples: *tuples, NumKeys: *keys, Skew: *skew, PayloadBytes: *payload}, *seed)
	if err != nil {
		return err
	}
	y, err := workload.GenerateRelation(workload.RelationSpec{
		Name: "Y", NumTuples: *tuples, NumKeys: *keys, Skew: *skew, PayloadBytes: *payload}, *seed+1)
	if err != nil {
		return err
	}
	cfg := skewjoin.Config{
		Capacity:     assign.Size(*q),
		BlockSize:    assign.Size(*block),
		CountOnly:    true,
		MemoryBudget: *memBudget,
		SpillDir:     *spillDir,
	}
	res, err := skewjoin.Run(x, y, cfg)
	if err != nil {
		return err
	}
	if want := skewjoin.ReferenceJoinCount(x, y); res.JoinedCount != want {
		return fmt.Errorf("verification failed: join produced %d rows, reference %d", res.JoinedCount, want)
	}

	tbl := report.NewTable(
		fmt.Sprintf("Skew join: %d tuples/side, %d keys, skew %.2f, q=%d bytes", *tuples, *keys, *skew, *q),
		"heavy_keys", "reducers", "light", "heavy", "comm_bytes", "max_load", "output_rows")
	tbl.AddRow(len(res.Plan.HeavyKeys), res.Plan.NumReducers, res.Plan.LightReducers, res.Plan.HeavyReducers,
		res.Counters.ShuffleBytes, res.Counters.MaxReducerLoad, res.JoinedCount)
	if err := tbl.WriteText(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "output verified against the reference hash join: OK")

	if *baseline && res.Plan.NumReducers > 0 {
		base, err := skewjoin.HashJoinBaseline(x, y, res.Plan.NumReducers, assign.Size(*q), true)
		if err != nil {
			return err
		}
		btbl := report.NewTable("Plain hash-join baseline (same number of reducers)",
			"max_load", "violates_q", "load_ratio_vs_skew_aware")
		ratio := 0.0
		if res.Counters.MaxReducerLoad > 0 {
			ratio = float64(base.Counters.MaxReducerLoad) / float64(res.Counters.MaxReducerLoad)
		}
		btbl.AddRow(base.Counters.MaxReducerLoad, base.CapacityViolated, ratio)
		if err := btbl.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}
