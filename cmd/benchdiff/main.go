// Command benchdiff turns raw `go test -bench` output into reproducible
// baselines and CI regression verdicts.
//
// Baseline mode regenerates a BENCH_*.json file from a bench run, so the
// committed numbers are machine-written rather than hand-edited:
//
//	go test -run '^$' -bench 'CoverSet|AuditorVerify' -count=6 ./... |
//	  benchdiff -mode=baseline -note "core bitset baselines" -out BENCH_core.json
//
// Gate mode compares two bench runs (typically the PR base and head) and
// fails — exit status 1 — when any selected benchmark regressed by more than
// the threshold with statistical significance (Mann-Whitney U, α = 0.05, the
// same test benchstat uses):
//
//	benchdiff -mode=gate -old base.txt -new head.txt -threshold 15 \
//	  -match '^Benchmark(PlannerCold|PlannerCached|ExecBatch|SessionDelta|CoverSet)'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		mode      = flag.String("mode", "gate", `"baseline" writes a BENCH_*.json from a bench run; "gate" compares two runs`)
		oldPath   = flag.String("old", "", "gate: bench output of the base (required)")
		newPath   = flag.String("new", "", "gate: bench output of the head (required)")
		inPath    = flag.String("in", "-", `baseline: bench output to read ("-" = stdin)`)
		outPath   = flag.String("out", "-", `baseline: JSON file to write ("-" = stdout)`)
		note      = flag.String("note", "", "baseline: free-form note stored in the JSON")
		match     = flag.String("match", "", "regexp selecting benchmark names (default: all)")
		threshold = flag.Float64("threshold", 15, "gate: %% slowdown above which a significant regression fails")
		alpha     = flag.Float64("alpha", 0.05, "gate: significance level for the Mann-Whitney test")
	)
	flag.Parse()

	var sel *regexp.Regexp
	if *match != "" {
		var err error
		if sel, err = regexp.Compile(*match); err != nil {
			fatalf("bad -match: %v", err)
		}
	}

	switch *mode {
	case "baseline":
		if err := runBaseline(*inPath, *outPath, *note, sel); err != nil {
			fatalf("baseline: %v", err)
		}
	case "gate":
		if *oldPath == "" || *newPath == "" {
			fatalf("gate mode needs -old and -new")
		}
		regressed, err := runGate(os.Stdout, *oldPath, *newPath, sel, *threshold, *alpha)
		if err != nil {
			fatalf("gate: %v", err)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		fatalf("unknown -mode %q", *mode)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

// sample is one benchmark measurement line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// benchLine matches `BenchmarkName-8   123   456 ns/op [789 B/op 12 allocs/op]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench collects per-benchmark samples from `go test -bench` output.
// The trailing -N GOMAXPROCS suffix is stripped so names are stable across
// machines.
func parseBench(r io.Reader) (map[string][]sample, []string, error) {
	samples := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		var s sample
		ok := false
		fields := strings.Fields(rest)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp, ok = v, true
			case "B/op":
				s.bytesPerOp, s.hasMem = v, true
			case "allocs/op":
				s.allocsPerOp, s.hasMem = v, true
			}
		}
		if !ok {
			continue
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	return samples, order, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func nsSamples(ss []sample) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = s.nsPerOp
	}
	return out
}

// mannWhitneyP returns the two-sided p-value of the Mann-Whitney U test under
// the normal approximation with tie correction — adequate at the -count=6
// sample sizes the CI gate runs, and the same family of test benchstat
// applies. Small samples (< 3 per side) return 1 (never significant).
func mannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if len(a) < 3 || len(b) < 3 {
		return 1
	}
	type rv struct {
		v    float64
		side int
	}
	all := make([]rv, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, rv{v, 0})
	}
	for _, v := range b {
		all = append(all, rv{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign midranks, accumulating the tie-correction term.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, x := range all {
		if x.side == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all values tied: no evidence of a shift
	}
	z := math.Abs(u1-mu) / math.Sqrt(sigma2)
	// Two-sided p from the normal tail.
	return math.Erfc(z / math.Sqrt2)
}

// baselineFile is the schema of the committed BENCH_*.json baselines.
type baselineFile struct {
	Recorded   string                   `json:"recorded"`
	Go         string                   `json:"go"`
	Note       string                   `json:"note,omitempty"`
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	Samples     int      `json:"samples"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func runBaseline(inPath, outPath, note string, sel *regexp.Regexp) error {
	in := os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	samples, order, err := parseBench(in)
	if err != nil {
		return err
	}
	bf := baselineFile{
		Recorded:   time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		Note:       note,
		Benchmarks: make(map[string]baselineEntry),
	}
	for _, name := range order {
		if sel != nil && !sel.MatchString(name) {
			continue
		}
		ss := samples[name]
		e := baselineEntry{NsPerOp: median(nsSamples(ss)), Samples: len(ss)}
		if ss[0].hasMem {
			bp := median(mapSamples(ss, func(s sample) float64 { return s.bytesPerOp }))
			ap := median(mapSamples(ss, func(s sample) float64 { return s.allocsPerOp }))
			e.BytesPerOp, e.AllocsPerOp = &bp, &ap
		}
		bf.Benchmarks[name] = e
	}
	if len(bf.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines matched")
	}
	blob, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(outPath, blob, 0o644)
}

func mapSamples(ss []sample, f func(sample) float64) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = f(s)
	}
	return out
}

// verdict is one benchmark's gate outcome.
type verdict struct {
	name             string
	oldNs, newNs     float64
	deltaPct, p      float64
	regressed, noted bool
}

func runGate(w io.Writer, oldPath, newPath string, sel *regexp.Regexp, threshold, alpha float64) (bool, error) {
	parse := func(path string) (map[string][]sample, []string, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	oldS, _, err := parse(oldPath)
	if err != nil {
		return false, err
	}
	newS, order, err := parse(newPath)
	if err != nil {
		return false, err
	}

	var verdicts []verdict
	anyRegressed := false
	matchedNew := 0
	for _, name := range order {
		if sel != nil && !sel.MatchString(name) {
			continue
		}
		matchedNew++
		os_, ok := oldS[name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		a, b := nsSamples(os_), nsSamples(newS[name])
		v := verdict{
			name:  name,
			oldNs: median(a),
			newNs: median(b),
			p:     mannWhitneyP(a, b),
		}
		v.deltaPct = (v.newNs - v.oldNs) / v.oldNs * 100
		v.noted = v.p < alpha
		v.regressed = v.noted && v.deltaPct > threshold
		anyRegressed = anyRegressed || v.regressed
		verdicts = append(verdicts, v)
	}
	if matchedNew == 0 {
		// An empty head run means the suite itself broke — that must fail.
		return false, fmt.Errorf("the new run has no matching benchmarks")
	}
	if len(verdicts) == 0 {
		// Every head benchmark is absent from the base (e.g. the base commit
		// predates the suite): nothing to regress against, the gate passes.
		fmt.Fprintf(w, "no benchmarks common to both runs (%d new-only); nothing to gate\n", matchedNew)
		return false, nil
	}

	fmt.Fprintf(w, "%-60s %14s %14s %8s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "p", "verdict")
	for _, v := range verdicts {
		status := "ok"
		switch {
		case v.regressed:
			status = fmt.Sprintf("REGRESSED (>%.0f%%)", threshold)
		case v.noted && v.deltaPct < 0:
			status = "improved"
		case !v.noted:
			status = "~ (not significant)"
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%% %8.3f  %s\n", v.name, v.oldNs, v.newNs, v.deltaPct, v.p, status)
	}
	return anyRegressed, nil
}
