package main

import (
	"math"
	"os"
	"strings"
	"testing"
)

const oldRun = `
goos: linux
BenchmarkPlannerCold-8   	     324	   1872414 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     309	   1979288 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     322	   1800546 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     350	   1780445 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     332	   1769521 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     325	   1821547 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       100.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       101.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	        99.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       100.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	        99.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       100.2 ns/op	       0 B/op	       0 allocs/op
ok   repro 10s
`

const newRegressed = `
BenchmarkPlannerCold-8   	     150	   3000000 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     151	   3010000 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     149	   2990000 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     150	   3005000 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     150	   2995000 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkPlannerCold-8   	     150	   3001000 ns/op	 1708699 B/op	    6379 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       100.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       100.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	        99.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	        99.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	       100.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoverSetCount-8 	 1000000	        99.9 ns/op	       0 B/op	       0 allocs/op
`

func TestParseBench(t *testing.T) {
	samples, order, err := parseBench(strings.NewReader(oldRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "BenchmarkPlannerCold" || order[1] != "BenchmarkCoverSetCount" {
		t.Fatalf("order = %v", order)
	}
	if got := len(samples["BenchmarkPlannerCold"]); got != 6 {
		t.Fatalf("PlannerCold samples = %d, want 6", got)
	}
	s := samples["BenchmarkPlannerCold"][0]
	if s.nsPerOp != 1872414 || s.bytesPerOp != 1708699 || s.allocsPerOp != 6379 || !s.hasMem {
		t.Fatalf("sample = %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
	if !math.IsNaN(median(nil)) {
		t.Error("median of nothing should be NaN")
	}
}

func TestMannWhitney(t *testing.T) {
	// Fully separated samples: clearly significant.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{100, 101, 102, 103, 104, 105}
	if p := mannWhitneyP(a, b); p >= 0.05 {
		t.Errorf("separated samples: p = %v, want < 0.05", p)
	}
	// Identical samples: all ties, never significant.
	c := []float64{5, 5, 5, 5, 5, 5}
	if p := mannWhitneyP(c, c); p < 0.05 {
		t.Errorf("identical samples: p = %v, want >= 0.05", p)
	}
	// Too few samples: never significant.
	if p := mannWhitneyP([]float64{1, 2}, []float64{9, 10}); p != 1 {
		t.Errorf("tiny samples: p = %v, want 1", p)
	}
	// Interleaved noise: not significant.
	d := []float64{10, 12, 11, 13, 12, 11}
	e := []float64{11, 12, 10, 13, 11, 12}
	if p := mannWhitneyP(d, e); p < 0.05 {
		t.Errorf("interleaved samples: p = %v, want >= 0.05", p)
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	f := t.TempDir() + "/bench.txt"
	if err := os.WriteFile(f, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGateFlagsSignificantRegression(t *testing.T) {
	oldPath := writeTemp(t, oldRun)
	newPath := writeTemp(t, newRegressed)
	var out strings.Builder
	regressed, err := runGate(&out, oldPath, newPath, nil, 15, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("a ~65%% slowdown must trip the gate; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("verdict table misses REGRESSED:\n%s", out.String())
	}
	// The unchanged benchmark must not be flagged.
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "CoverSetCount") && strings.Contains(line, "REGRESSED") {
			t.Errorf("stable benchmark flagged: %s", line)
		}
	}
}

func TestGatePassesOnNoise(t *testing.T) {
	oldPath := writeTemp(t, oldRun)
	newPath := writeTemp(t, oldRun) // identical runs
	var out strings.Builder
	regressed, err := runGate(&out, oldPath, newPath, nil, 15, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("identical runs tripped the gate:\n%s", out.String())
	}
}

func TestGateIgnoresBenchmarksMissingFromBase(t *testing.T) {
	oldPath := writeTemp(t, oldRun)
	newPath := writeTemp(t, oldRun+`
BenchmarkBrandNew-8 	 10	 999999 ns/op
BenchmarkBrandNew-8 	 10	 999999 ns/op
BenchmarkBrandNew-8 	 10	 999999 ns/op
`)
	var out strings.Builder
	regressed, err := runGate(&out, oldPath, newPath, nil, 15, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("a benchmark with no base measurement must not fail the gate")
	}
	if strings.Contains(out.String(), "BrandNew") {
		t.Errorf("new-only benchmark should be skipped:\n%s", out.String())
	}
}

func TestGatePassesWhenBasePredatesTheSuite(t *testing.T) {
	oldPath := writeTemp(t, "goos: linux\nok repro 1s\n") // base run: no bench lines
	newPath := writeTemp(t, oldRun)
	var out strings.Builder
	regressed, err := runGate(&out, oldPath, newPath, nil, 15, 0.05)
	if err != nil {
		t.Fatalf("a base with no benchmarks must not error: %v", err)
	}
	if regressed {
		t.Fatal("a base with no benchmarks must not regress")
	}
	if !strings.Contains(out.String(), "nothing to gate") {
		t.Errorf("missing skip note:\n%s", out.String())
	}
}

func TestGateFailsWhenHeadRunIsEmpty(t *testing.T) {
	oldPath := writeTemp(t, oldRun)
	newPath := writeTemp(t, "ok repro 1s\n") // head suite broke: no bench lines
	var out strings.Builder
	if _, err := runGate(&out, oldPath, newPath, nil, 15, 0.05); err == nil {
		t.Fatal("an empty head run must error (broken suite), not pass silently")
	}
}
